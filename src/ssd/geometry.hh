/**
 * @file
 * Full-drive physical geometry: channel -> die -> plane -> block -> page,
 * derived from SsdConfig. FEMU's FTL keeps the same decomposition behind
 * `ppa2pgidx`/`pgidx2ppa`; here the flat index doubles as the global page
 * id the topology tests use to prove the encoding is a bijection and that
 * it agrees with PageMapping's (chip, block, page) PPN layout.
 *
 * Validation is two-tiered: validate() holds for every drive the
 * simulator can run (positive counts, per-die plane limit), while
 * validateQueued() adds the constraints the queued channel-arbitration
 * fast path relies on (power-of-two pages per block, so page indices
 * split into shift/mask fields). The paper's Table 2 drive (2112 pages
 * per block) is legal under legacy arbitration and rejected only when
 * queued arbitration is requested.
 */

#ifndef AERO_SSD_GEOMETRY_HH
#define AERO_SSD_GEOMETRY_HH

#include <cstdint>

#include "ssd/config.hh"

namespace aero
{

/** One physical page address, fully decomposed. */
struct Ppa
{
    int channel = 0;
    int die = 0;    //!< die (chip) index within its channel
    int plane = 0;
    int block = 0;  //!< block index within its plane
    int page = 0;
};

class DriveGeometry
{
  public:
    /** Channels in the drive. */
    int channels = 0;
    /** Dies (chips) per channel. */
    int diesPerChannel = 0;
    /** Planes per die. */
    int planesPerDie = 0;
    /** Blocks per plane. */
    int blocksPerPlane = 0;
    /** Pages per block. */
    int pagesPerBlock = 0;

    /** Dies sharing one channel bus is bounded by ONFI CE lines. */
    static constexpr int kMaxPlanesPerDie = 8;

    static DriveGeometry of(const SsdConfig &cfg);

    /** Fatal on any geometry no drive can have (see file comment). */
    void validate() const;

    /** validate() plus the queued-arbitration constraints. */
    void validateQueued() const;

    int totalDies() const { return channels * diesPerChannel; }
    int blocksPerDie() const { return planesPerDie * blocksPerPlane; }

    std::uint64_t
    totalPages() const
    {
        return static_cast<std::uint64_t>(totalDies()) * blocksPerDie() *
               pagesPerBlock;
    }

    /** Flat chip index of a decomposed address. */
    int
    chipOf(const Ppa &ppa) const
    {
        return ppa.channel * diesPerChannel + ppa.die;
    }

    int channelOfChip(int chip) const { return chip / diesPerChannel; }

    /** Chip-local block id (plane-major, as BlockManager lays them out). */
    BlockId
    chipBlockOf(const Ppa &ppa) const
    {
        return static_cast<BlockId>(ppa.plane * blocksPerPlane + ppa.block);
    }

    /** FEMU's ppa2pgidx: dense flat page index over the whole drive. */
    std::uint64_t pageIndex(const Ppa &ppa) const;

    /** Inverse of pageIndex (pgidx2ppa). */
    Ppa ppaOf(std::uint64_t pgidx) const;
};

} // namespace aero

#endif // AERO_SSD_GEOMETRY_HH
