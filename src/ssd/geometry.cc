#include "ssd/geometry.hh"

#include "common/logging.hh"

namespace aero
{

namespace
{

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

DriveGeometry
DriveGeometry::of(const SsdConfig &cfg)
{
    DriveGeometry g;
    g.channels = cfg.channels;
    g.diesPerChannel = cfg.chipsPerChannel;
    g.planesPerDie = cfg.geometry.planes;
    g.blocksPerPlane = cfg.geometry.blocksPerPlane;
    g.pagesPerBlock = cfg.geometry.pagesPerBlock;
    return g;
}

void
DriveGeometry::validate() const
{
    if (channels <= 0)
        AERO_FATAL("geometry: channel count must be positive, got ",
                   channels);
    if (diesPerChannel <= 0)
        AERO_FATAL("geometry: dies per channel must be positive, got ",
                   diesPerChannel);
    if (planesPerDie <= 0)
        AERO_FATAL("geometry: plane count must be positive, got ",
                   planesPerDie);
    if (planesPerDie > kMaxPlanesPerDie)
        AERO_FATAL("geometry: plane count ", planesPerDie,
                   " exceeds the per-die limit of ", kMaxPlanesPerDie);
    if (blocksPerPlane <= 0)
        AERO_FATAL("geometry: blocks per plane must be positive, got ",
                   blocksPerPlane);
    if (pagesPerBlock <= 0)
        AERO_FATAL("geometry: pages per block must be positive, got ",
                   pagesPerBlock);
}

void
DriveGeometry::validateQueued() const
{
    validate();
    if (!isPowerOfTwo(pagesPerBlock))
        AERO_FATAL("geometry: pages per block must be a power of two "
                   "for queued arbitration, got ",
                   pagesPerBlock);
}

std::uint64_t
DriveGeometry::pageIndex(const Ppa &ppa) const
{
    // channel-major, then die, plane, block, page — FEMU's ppa2pgidx
    // ordering, and identical to PageMapping's (chip, chip-block, page)
    // encode because chip = channel*diesPerChannel + die and the
    // chip-local block id is plane-major.
    std::uint64_t idx = static_cast<std::uint64_t>(ppa.channel);
    idx = idx * static_cast<std::uint64_t>(diesPerChannel) + ppa.die;
    idx = idx * static_cast<std::uint64_t>(planesPerDie) + ppa.plane;
    idx = idx * static_cast<std::uint64_t>(blocksPerPlane) + ppa.block;
    idx = idx * static_cast<std::uint64_t>(pagesPerBlock) + ppa.page;
    return idx;
}

Ppa
DriveGeometry::ppaOf(std::uint64_t pgidx) const
{
    AERO_CHECK(pgidx < totalPages(), "page index out of range: ", pgidx);
    Ppa ppa;
    ppa.page = static_cast<int>(pgidx % pagesPerBlock);
    pgidx /= pagesPerBlock;
    ppa.block = static_cast<int>(pgidx % blocksPerPlane);
    pgidx /= blocksPerPlane;
    ppa.plane = static_cast<int>(pgidx % planesPerDie);
    pgidx /= planesPerDie;
    ppa.die = static_cast<int>(pgidx % diesPerChannel);
    pgidx /= diesPerChannel;
    ppa.channel = static_cast<int>(pgidx);
    return ppa;
}

} // namespace aero
