#include "ssd/gc.hh"

namespace aero
{

BlockId
GreedyGcPolicy::pickVictim(const PageMapping &mapping,
                           const BlockManager &blocks, int chip, int plane)
{
    BlockId best = kInvalidBlock;
    int best_valid = 0x7fffffff;
    for (const BlockId b : blocks.fullBlocks(chip, plane)) {
        const int valid = mapping.validPages(chip, b);
        if (valid < best_valid) {
            best_valid = valid;
            best = b;
        }
    }
    return best;
}

} // namespace aero
