#include "ssd/gc.hh"

#include "common/logging.hh"

namespace aero
{

BlockId
GreedyGcPolicy::pickVictim(const PageMapping &mapping,
                           const BlockManager &blocks, int chip,
                           int plane) const
{
    BlockId best = kInvalidBlock;
    int best_valid = 0x7fffffff;
    for (const BlockId b : blocks.fullBlocks(chip, plane)) {
        const int valid = mapping.validPages(chip, b);
        if (valid < best_valid) {
            best_valid = valid;
            best = b;
        }
    }
    return best;
}

BlockId
FifoGcPolicy::pickVictim(const PageMapping &mapping,
                         const BlockManager &blocks, int chip,
                         int plane) const
{
    (void)mapping;
    BlockId best = kInvalidBlock;
    for (const BlockId b : blocks.fullBlocks(chip, plane)) {
        if (best == kInvalidBlock || b < best)
            best = b;
    }
    return best;
}

std::unique_ptr<GcPolicy>
makeGcPolicy(const std::string &name)
{
    if (name == "greedy")
        return std::make_unique<GreedyGcPolicy>();
    if (name == "fifo")
        return std::make_unique<FifoGcPolicy>();
    AERO_FATAL("unknown GC policy '", name, "' (valid: ", gcPolicyNames(),
               ")");
}

const char *
gcPolicyNames()
{
    return "greedy, fifo";
}

} // namespace aero
