#include "ssd/gc.hh"

#include "common/logging.hh"

namespace aero
{

std::unique_ptr<GcPolicy>
makeGcPolicy(const std::string &name)
{
    if (name == "greedy")
        return std::make_unique<GreedyGcPolicy>();
    if (name == "cost-benefit")
        return std::make_unique<CostBenefitGcPolicy>();
    if (name == "fifo-log" || name == "fifo")
        return std::make_unique<FifoLogGcPolicy>();
    AERO_FATAL("unknown GC policy '", name, "' (valid: ", gcPolicyNames(),
               ")");
}

const char *
gcPolicyNames()
{
    return "greedy, cost-benefit, fifo-log";
}

} // namespace aero
