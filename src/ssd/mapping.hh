/**
 * @file
 * Page-level logical-to-physical mapping (the conventional page-level FTL
 * the paper extends, after DFTL [70] but with the full table resident, as
 * in modern DRAM-backed SSDs).
 *
 * A PPN encodes (chip, chip-local block, page):
 *   ppn = (chip * blocksPerChip + block) * pagesPerBlock + page.
 */

#ifndef AERO_SSD_MAPPING_HH
#define AERO_SSD_MAPPING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace aero
{

struct PpnParts
{
    int chip;
    BlockId block;  //!< chip-local block id
    int page;
};

class PageMapping
{
  public:
    PageMapping(std::uint64_t logical_pages, int chips, int blocks_per_chip,
                int pages_per_block);

    std::uint64_t logicalPages() const { return l2p.size(); }

    /** Current physical location of a logical page (kInvalidPpn if none). */
    Ppn lookup(Lpn lpn) const;

    /** Logical owner of a physical page (kInvalidLpn if free/invalid). */
    Lpn reverseLookup(Ppn ppn) const;

    bool isValid(Ppn ppn) const { return reverseLookup(ppn) != kInvalidLpn; }

    /**
     * Map `lpn` to `ppn`, invalidating any previous location.
     * @return the invalidated old PPN, or kInvalidPpn.
     */
    Ppn update(Lpn lpn, Ppn ppn);

    /** Drop the mapping of a logical page (TRIM). */
    void invalidateLpn(Lpn lpn);

    /** Valid-page count of a chip-local block of a chip. */
    int validPages(int chip, BlockId block) const;

    /** Called by the block manager when a block is erased. */
    void onBlockErased(int chip, BlockId block);

    /** @name PPN encoding */
    /** @{ */
    Ppn encode(int chip, BlockId block, int page) const;
    PpnParts decode(Ppn ppn) const;
    /** @} */

    std::uint64_t mappedCount() const { return mapped; }

  private:
    std::size_t blockIndex(int chip, BlockId block) const;

    int chips;
    int blocksPerChip;
    int pagesPerBlock;
    std::vector<Ppn> l2p;
    std::vector<Lpn> p2l;
    std::vector<std::int32_t> validCount;  //!< per (chip, block)
    std::uint64_t mapped = 0;
};

} // namespace aero

#endif // AERO_SSD_MAPPING_HH
