#include "ssd/line_manager.hh"

#include "common/logging.hh"
#include "ssd/block_manager.hh"

namespace aero
{

LineManager::LineManager(const SsdConfig &cfg, const GcPolicy &policy_,
                         const BlockManager &blocks_)
    : numChips(cfg.totalChips()), planesPerChip(cfg.geometry.planes),
      blocksPerPlane(cfg.geometry.blocksPerPlane),
      pagesPerBlock(cfg.geometry.pagesPerBlock), policy(policy_),
      blocks(blocks_),
      lines(static_cast<std::size_t>(numChips) * planesPerChip *
            blocksPerPlane),
      heaps(static_cast<std::size_t>(numChips) * planesPerChip)
{
}

bool
LineManager::less(const Key &a, const Key &b)
{
    if (a.score != b.score)
        return a.score < b.score;
    if (a.tie != b.tie)
        return a.tie < b.tie;
    return a.block < b.block;
}

std::size_t
LineManager::blockIndex(int chip, BlockId block) const
{
    AERO_CHECK(chip >= 0 && chip < numChips, "chip out of range");
    AERO_CHECK(block < static_cast<BlockId>(planesPerChip * blocksPerPlane),
               "block out of range");
    return static_cast<std::size_t>(chip) * planesPerChip * blocksPerPlane +
           block;
}

std::size_t
LineManager::planeIndex(int chip, int plane) const
{
    AERO_CHECK(plane >= 0 && plane < planesPerChip, "plane out of range");
    return static_cast<std::size_t>(chip) * planesPerChip + plane;
}

GcLineInfo
LineManager::lineInfo(int chip, BlockId block) const
{
    const Line &line = lines[blockIndex(chip, block)];
    GcLineInfo info;
    info.block = block;
    info.validPages = line.valid;
    info.pagesPerBlock = pagesPerBlock;
    info.openSeq = line.openSeq;
    info.eraseCount = blocks.eraseCount(chip, block);
    return info;
}

LineManager::Key
LineManager::keyFor(int chip, BlockId block) const
{
    const GcLineInfo info = lineInfo(chip, block);
    return Key{policy.score(info), policy.tieBreak(info), block};
}

void
LineManager::siftUp(PlaneHeap &heap, int chip, std::size_t pos)
{
    auto &h = heap.entries;
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / 2;
        if (!less(h[pos], h[parent]))
            break;
        std::swap(h[pos], h[parent]);
        lines[blockIndex(chip, h[pos].block)].pos = pos;
        lines[blockIndex(chip, h[parent].block)].pos = parent;
        pos = parent;
    }
}

void
LineManager::siftDown(PlaneHeap &heap, int chip, std::size_t pos)
{
    auto &h = heap.entries;
    const std::size_t n = h.size();
    for (;;) {
        std::size_t best = pos;
        const std::size_t left = 2 * pos + 1;
        const std::size_t right = left + 1;
        if (left < n && less(h[left], h[best]))
            best = left;
        if (right < n && less(h[right], h[best]))
            best = right;
        if (best == pos)
            return;
        std::swap(h[pos], h[best]);
        lines[blockIndex(chip, h[pos].block)].pos = pos;
        lines[blockIndex(chip, h[best].block)].pos = best;
        pos = best;
    }
}

void
LineManager::heapRemove(PlaneHeap &heap, int chip, std::size_t pos)
{
    auto &h = heap.entries;
    lines[blockIndex(chip, h[pos].block)].pos = kNoPos;
    const std::size_t last = h.size() - 1;
    if (pos != last) {
        h[pos] = h[last];
        lines[blockIndex(chip, h[pos].block)].pos = pos;
    }
    h.pop_back();
    if (pos < h.size()) {
        siftUp(heap, chip, pos);
        siftDown(heap, chip, pos);
    }
}

void
LineManager::reposition(int chip, BlockId block)
{
    Line &line = lines[blockIndex(chip, block)];
    if (line.pos == kNoPos)
        return;
    const int plane = static_cast<int>(block) / blocksPerPlane;
    PlaneHeap &heap = heaps[planeIndex(chip, plane)];
    heap.entries[line.pos] = keyFor(chip, block);
    siftUp(heap, chip, line.pos);
    siftDown(heap, chip, line.pos);
}

void
LineManager::onBlockOpened(int chip, BlockId block)
{
    Line &line = lines[blockIndex(chip, block)];
    AERO_CHECK(line.pos == kNoPos, "opened block still in victim heap");
    line.openSeq = nextOpenSeq++;
}

void
LineManager::onBlockFull(int chip, BlockId block)
{
    Line &line = lines[blockIndex(chip, block)];
    AERO_CHECK(line.pos == kNoPos, "full block already in victim heap");
    const int plane = static_cast<int>(block) / blocksPerPlane;
    PlaneHeap &heap = heaps[planeIndex(chip, plane)];
    heap.entries.push_back(keyFor(chip, block));
    line.pos = heap.entries.size() - 1;
    siftUp(heap, chip, line.pos);
}

void
LineManager::onBlockErased(int chip, BlockId block)
{
    Line &line = lines[blockIndex(chip, block)];
    AERO_CHECK(line.valid == 0, "erased block still has ", line.valid,
               " valid pages tracked");
    if (line.pos != kNoPos) {
        const int plane = static_cast<int>(block) / blocksPerPlane;
        heapRemove(heaps[planeIndex(chip, plane)], chip, line.pos);
    }
    line.openSeq = 0;
}

void
LineManager::onPageMapped(int chip, BlockId block)
{
    Line &line = lines[blockIndex(chip, block)];
    line.valid += 1;
    AERO_CHECK(line.valid <= pagesPerBlock, "valid pages overflow block");
    reposition(chip, block);
}

void
LineManager::onPageInvalidated(int chip, BlockId block)
{
    Line &line = lines[blockIndex(chip, block)];
    AERO_CHECK(line.valid > 0, "invalidation underflow on block ", block);
    line.valid -= 1;
    reposition(chip, block);
}

BlockId
LineManager::pickVictim(int chip, int plane) const
{
    const PlaneHeap &heap = heaps[planeIndex(chip, plane)];
    if (heap.entries.empty())
        return kInvalidBlock;
    return heap.entries.front().block;
}

BlockId
LineManager::bruteForceVictim(int chip, int plane) const
{
    const PlaneHeap &heap = heaps[planeIndex(chip, plane)];
    BlockId best = kInvalidBlock;
    Key best_key;
    for (const Key &stored : heap.entries) {
        // Re-derive the key from current state rather than trusting the
        // stored copy: the whole point is to catch a stale heap.
        const Key key = keyFor(chip, stored.block);
        if (best == kInvalidBlock || less(key, best_key)) {
            best = stored.block;
            best_key = key;
        }
    }
    return best;
}

std::vector<BlockId>
LineManager::fullBlocks(int chip, int plane) const
{
    std::vector<BlockId> out;
    const BlockId lo = static_cast<BlockId>(plane) * blocksPerPlane;
    for (BlockId b = lo; b < lo + static_cast<BlockId>(blocksPerPlane); ++b) {
        if (lines[blockIndex(chip, b)].pos != kNoPos)
            out.push_back(b);
    }
    return out;
}

std::size_t
LineManager::fullCount(int chip, int plane) const
{
    return heaps[planeIndex(chip, plane)].entries.size();
}

int
LineManager::trackedValid(int chip, BlockId block) const
{
    return lines[blockIndex(chip, block)].valid;
}

} // namespace aero
