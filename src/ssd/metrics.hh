/**
 * @file
 * Run metrics: per-op latency distributions (exact percentiles for the
 * paper's 99.99th / 99.9999th tail figures), IOPS, and erase/GC counters.
 */

#ifndef AERO_SSD_METRICS_HH
#define AERO_SSD_METRICS_HH

#include <string>
#include <vector>

#include "stats/percentile.hh"
#include "common/types.hh"
#include "workload/trace.hh"

namespace aero
{

/**
 * Per-tenant QoS accounting bucket: the same latency reservoirs the
 * drive keeps globally, split by the TenantId each trace record carries.
 * Only populated when enableTenantTracking() was called — single-tenant
 * runs pay nothing.
 */
struct TenantLatency
{
    PercentileTracker readLatency;   //!< ns, completed user reads
    PercentileTracker writeLatency;  //!< ns, completed user writes
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** @name SLO enforcement (only move when a policy is active) */
    /** @{ */
    std::uint64_t throttleDeferrals = 0;  //!< requests the bucket parked
    Tick throttleDeferredTicks = 0;       //!< total time parked
    std::uint64_t channelGrants = 0;      //!< host-class WFQ grants
    Tick channelHeldTicks = 0;            //!< bus time those grants held
    /** @} */

    /** Achieved read p99 in µs (0 when no reads completed). */
    double
    readP99Us() const
    {
        return readLatency.count() == 0
                   ? 0.0
                   : ticksToUs(readLatency.percentile(0.99));
    }
};

struct SsdMetrics
{
    PercentileTracker readLatency;   //!< ns, completed user reads
    PercentileTracker writeLatency;  //!< ns, completed user writes

    /** Indexed by TenantId; empty unless enableTenantTracking(). */
    std::vector<TenantLatency> tenants;

    void enableTenantTracking(std::size_t count) { tenants.resize(count); }
    bool tenantTrackingEnabled() const { return !tenants.empty(); }

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t unmappedReads = 0;

    std::uint64_t erases = 0;
    std::uint64_t eraseLoops = 0;
    Tick eraseBusyTime = 0;      //!< total chip time spent erasing
    std::uint64_t eraseSuspensions = 0;

    std::uint64_t gcInvocations = 0;
    std::uint64_t gcMigratedPages = 0;

    /** @name Wear leveling (ssd/wear_level.hh) */
    /** @{ */
    std::uint64_t wlInvocations = 0;
    std::uint64_t wlMigratedPages = 0;
    /** @} */

    /**
     * @name Channel arbitration
     * Busy ticks accrue under both arbitration models (the reserved
     * transfer slice in legacy, the granted slice in queued); the
     * wait/grant counters only move under queued arbitration, where
     * requests actually queue (ssd/channel.hh).
     */
    /** @{ */
    std::vector<Tick> channelBusyTicks;  //!< per channel, transfer time
    Tick hostChannelWaitTicks = 0;
    std::uint64_t hostChannelGrants = 0;
    Tick gcChannelWaitTicks = 0;
    std::uint64_t gcChannelGrants = 0;
    Tick eraseChannelWaitTicks = 0;
    std::uint64_t eraseChannelGrants = 0;
    /** @} */

    /**
     * @name SLO enforcement (ssd/config.hh SloPolicy)
     * Drive-wide totals of the per-tenant deferral counters; only move
     * when admission throttling is active.
     */
    /** @{ */
    std::uint64_t throttleDeferrals = 0;
    Tick throttleDeferredTicks = 0;
    /** @} */

    Tick simulatedTime = 0;

    double
    iops() const
    {
        if (simulatedTime == 0)
            return 0.0;
        return static_cast<double>(reads + writes) /
               (static_cast<double>(simulatedTime) /
                static_cast<double>(kSec));
    }

    double
    avgEraseLatencyMs() const
    {
        if (erases == 0)
            return 0.0;
        return ticksToMs(eraseBusyTime) / static_cast<double>(erases);
    }

    /** Write amplification: (user + GC + WL writes) / user writes. */
    double
    writeAmplification() const
    {
        if (writes == 0)
            return 0.0;
        return static_cast<double>(writes + gcMigratedPages +
                                   wlMigratedPages) /
               static_cast<double>(writes);
    }

    /** GC's contribution to write amplification (excludes WL copies). */
    double
    gcWriteAmplification() const
    {
        if (writes == 0)
            return 0.0;
        return static_cast<double>(writes + gcMigratedPages) /
               static_cast<double>(writes);
    }

    /** Fraction of simulated time channel `ch` spent transferring. */
    double
    channelUtilization(int ch) const
    {
        if (simulatedTime == 0 ||
            static_cast<std::size_t>(ch) >= channelBusyTicks.size())
            return 0.0;
        return static_cast<double>(channelBusyTicks[ch]) /
               static_cast<double>(simulatedTime);
    }

    double
    maxChannelUtilization() const
    {
        double max_util = 0.0;
        for (std::size_t c = 0; c < channelBusyTicks.size(); ++c) {
            const double u = channelUtilization(static_cast<int>(c));
            if (u > max_util)
                max_util = u;
        }
        return max_util;
    }

    /** Mean bus-queueing delay a host transfer suffered (queued mode). */
    double
    avgHostChannelWaitUs() const
    {
        if (hostChannelGrants == 0)
            return 0.0;
        return ticksToUs(hostChannelWaitTicks) /
               static_cast<double>(hostChannelGrants);
    }

    /** Mean bus-queueing delay a GC copy suffered (queued mode). */
    double
    avgGcChannelWaitUs() const
    {
        if (gcChannelGrants == 0)
            return 0.0;
        return ticksToUs(gcChannelWaitTicks) /
               static_cast<double>(gcChannelGrants);
    }

    std::string summary() const;
};

} // namespace aero

#endif // AERO_SSD_METRICS_HH
