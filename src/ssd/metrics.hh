/**
 * @file
 * Run metrics: per-op latency distributions (exact percentiles for the
 * paper's 99.99th / 99.9999th tail figures), IOPS, and erase/GC counters.
 */

#ifndef AERO_SSD_METRICS_HH
#define AERO_SSD_METRICS_HH

#include <string>
#include <vector>

#include "stats/percentile.hh"
#include "common/types.hh"
#include "workload/trace.hh"

namespace aero
{

/**
 * Per-tenant QoS accounting bucket: the same latency reservoirs the
 * drive keeps globally, split by the TenantId each trace record carries.
 * Only populated when enableTenantTracking() was called — single-tenant
 * runs pay nothing.
 */
struct TenantLatency
{
    PercentileTracker readLatency;   //!< ns, completed user reads
    PercentileTracker writeLatency;  //!< ns, completed user writes
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

struct SsdMetrics
{
    PercentileTracker readLatency;   //!< ns, completed user reads
    PercentileTracker writeLatency;  //!< ns, completed user writes

    /** Indexed by TenantId; empty unless enableTenantTracking(). */
    std::vector<TenantLatency> tenants;

    void enableTenantTracking(std::size_t count) { tenants.resize(count); }
    bool tenantTrackingEnabled() const { return !tenants.empty(); }

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t unmappedReads = 0;

    std::uint64_t erases = 0;
    std::uint64_t eraseLoops = 0;
    Tick eraseBusyTime = 0;      //!< total chip time spent erasing
    std::uint64_t eraseSuspensions = 0;

    std::uint64_t gcInvocations = 0;
    std::uint64_t gcMigratedPages = 0;

    Tick simulatedTime = 0;

    double
    iops() const
    {
        if (simulatedTime == 0)
            return 0.0;
        return static_cast<double>(reads + writes) /
               (static_cast<double>(simulatedTime) /
                static_cast<double>(kSec));
    }

    double
    avgEraseLatencyMs() const
    {
        if (erases == 0)
            return 0.0;
        return ticksToMs(eraseBusyTime) / static_cast<double>(erases);
    }

    /** Write amplification: (user + GC writes) / user writes. */
    double
    writeAmplification() const
    {
        if (writes == 0)
            return 0.0;
        return static_cast<double>(writes + gcMigratedPages) /
               static_cast<double>(writes);
    }

    std::string summary() const;
};

} // namespace aero

#endif // AERO_SSD_METRICS_HH
