/**
 * @file
 * Run metrics: per-op latency distributions (exact percentiles for the
 * paper's 99.99th / 99.9999th tail figures), IOPS, and erase/GC counters.
 */

#ifndef AERO_SSD_METRICS_HH
#define AERO_SSD_METRICS_HH

#include <string>

#include "stats/percentile.hh"
#include "common/types.hh"

namespace aero
{

struct SsdMetrics
{
    PercentileTracker readLatency;   //!< ns, completed user reads
    PercentileTracker writeLatency;  //!< ns, completed user writes

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t unmappedReads = 0;

    std::uint64_t erases = 0;
    std::uint64_t eraseLoops = 0;
    Tick eraseBusyTime = 0;      //!< total chip time spent erasing
    std::uint64_t eraseSuspensions = 0;

    std::uint64_t gcInvocations = 0;
    std::uint64_t gcMigratedPages = 0;

    Tick simulatedTime = 0;

    double
    iops() const
    {
        if (simulatedTime == 0)
            return 0.0;
        return static_cast<double>(reads + writes) /
               (static_cast<double>(simulatedTime) /
                static_cast<double>(kSec));
    }

    double
    avgEraseLatencyMs() const
    {
        if (erases == 0)
            return 0.0;
        return ticksToMs(eraseBusyTime) / static_cast<double>(erases);
    }

    /** Write amplification: (user + GC writes) / user writes. */
    double
    writeAmplification() const
    {
        if (writes == 0)
            return 0.0;
        return static_cast<double>(writes + gcMigratedPages) /
               static_cast<double>(writes);
    }

    std::string summary() const;
};

} // namespace aero

#endif // AERO_SSD_METRICS_HH
