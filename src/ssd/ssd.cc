#include "ssd/ssd.hh"

#include "common/logging.hh"

namespace aero
{

Ssd::Ssd(const SsdConfig &cfg_) : cfg(cfg_)
{
    ftlImpl = std::make_unique<Ftl>(cfg, eq);
    if (cfg.prefillFraction > 0.0) {
        ftlImpl->prefill();
        const auto overwrites = static_cast<std::uint64_t>(
            static_cast<double>(cfg.logicalPages()) *
            cfg.warmupOverwriteFraction);
        ftlImpl->warmup(overwrites);
    }
}

void
Ssd::run(const Trace &trace)
{
    run(trace, kTickMax);
}

void
Ssd::run(const Trace &trace, Tick deadline)
{
    VectorTraceStream stream(trace);
    run(stream, deadline);
}

void
Ssd::run(TraceStream &stream)
{
    run(stream, kTickMax);
}

void
Ssd::run(TraceStream &stream, Tick deadline)
{
    // Feed arrivals incrementally, keeping the queue small. The queue is
    // always drained before returning (the deadline only stops *new*
    // arrivals), so the stack pump cannot dangle.
    TracePump pump{ftlImpl.get(), &eq, &stream, {}, false, eq.now(),
                   deadline};
    pump.hasPending = stream.next(pump.pending);
    if (!pump.hasPending)
        return;
    eq.scheduleTraceAdmitAt(pump.base + pump.pending.arrival, pump);
    eq.run();
    AERO_CHECK(ftlImpl->drained(), "event queue drained with in-flight "
               "requests: FTL lost a completion");
    metrics().simulatedTime = eq.now();
}

void
TracePump::fire()
{
    for (;;) {
        ftl->submit(pending);
        hasPending = stream->next(pending);
        if (!hasPending || eq->now() >= deadline)
            return;
        const Tick due_raw = base + pending.arrival;
        const Tick due = due_raw < eq->now() ? eq->now() : due_raw;
        // Admit the next record inline only when that is provably
        // identical to the one-event-per-record pump this replaced: a
        // pump event scheduled at now() with nothing else pending at
        // now() would fire immediately next anyway.
        if (due <= eq->now() && eq->nextEventTick() > eq->now())
            continue;
        eq->scheduleTraceAdmitAt(due, *this);
        return;
    }
}

} // namespace aero
