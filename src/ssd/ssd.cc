#include "ssd/ssd.hh"

#include <algorithm>

#include "common/logging.hh"

namespace aero
{

Ssd::Ssd(const SsdConfig &cfg_) : cfg(cfg_)
{
    ftlImpl = std::make_unique<Ftl>(cfg, eq);
    if (cfg.prefillFraction > 0.0) {
        ftlImpl->prefill();
        const auto overwrites = static_cast<std::uint64_t>(
            static_cast<double>(cfg.logicalPages()) *
            cfg.warmupOverwriteFraction);
        ftlImpl->warmup(overwrites);
    }
}

void
Ssd::run(const Trace &trace)
{
    run(trace, kTickMax);
}

void
Ssd::run(const Trace &trace, Tick deadline)
{
    VectorTraceStream stream(trace);
    run(stream, deadline);
}

void
Ssd::run(TraceStream &stream)
{
    run(stream, kTickMax);
}

void
Ssd::run(TraceStream &stream, Tick deadline)
{
    // Feed arrivals incrementally, keeping the queue small. The queue is
    // always drained before returning (the deadline only stops *new*
    // arrivals), so the stack pump cannot dangle.
    TracePump pump{};
    pump.ftl = ftlImpl.get();
    pump.eq = &eq;
    pump.stream = &stream;
    pump.base = eq.now();
    pump.deadline = deadline;
    if (sloPolicyThrottles(cfg.sloPolicy) && !cfg.slo.empty())
        pump.configureThrottle(cfg.slo, cfg.pageSizeKB, metrics());
    pump.hasPending = stream.next(pump.pending);
    if (!pump.hasPending)
        return;
    eq.scheduleTraceAdmitAt(pump.base + pump.pending.arrival, pump);
    eq.run();
    AERO_CHECK(ftlImpl->drained(), "event queue drained with in-flight "
               "requests: FTL lost a completion");
    AERO_CHECK(!pump.throttledPending(), "event queue drained with "
               "throttled requests still parked: a bucket refill was lost");
    metrics().simulatedTime = eq.now();
}

namespace
{

/** Earliest tick at which the cell conforms (0 when it already does). */
Tick
bucketReadyAt(const TracePump::Bucket &b)
{
    // GCRA conformance at time t: TAT - t <= burst. The fractional
    // remainder rounds the release tick up so we never admit early.
    if (b.rate == 0 || b.tat <= b.burstTicks)
        return 0;
    return b.tat - b.burstTicks + (b.tatFrac != 0 ? 1 : 0);
}

/** Charge `cost` units against the cell at time `now`. */
void
bucketCharge(TracePump::Bucket &b, std::uint64_t cost, Tick now)
{
    if (b.rate == 0)
        return;
    if (b.tat < now) {
        // Idle credit beyond the burst tolerance does not accumulate.
        b.tat = now;
        b.tatFrac = 0;
    }
    // Exact increment: cost * kSec / rate ticks, carried as whole ticks
    // plus a numerator over rate. 128-bit because cost * 1e9 overflows.
    const unsigned __int128 numer =
        static_cast<unsigned __int128>(cost) * kSec + b.tatFrac;
    b.tat += static_cast<Tick>(numer / b.rate);
    b.tatFrac = static_cast<std::uint64_t>(numer % b.rate);
}

/** Burst tolerance in ticks for `burst` cost units at `rate`/s. */
Tick
bucketBurstTicks(std::uint64_t burst, std::uint64_t rate)
{
    const unsigned __int128 t =
        static_cast<unsigned __int128>(burst) * kSec / rate;
    return t > kTickMax ? kTickMax : static_cast<Tick>(t);
}

std::uint64_t
recordBwCost(const TraceRecord &rec, std::uint32_t pageKB)
{
    return static_cast<std::uint64_t>(rec.pages) * pageKB;
}

} // namespace

void
TracePump::configureThrottle(const TenantSloSpec &spec,
                             std::uint32_t pageSizeKB, SsdMetrics &metrics)
{
    stats = &metrics;
    pageKB = pageSizeKB;
    gates.assign(static_cast<std::size_t>(spec.maxTenant()) + 1,
                 TenantGate{});
    for (const TenantSlo &t : spec.tenants) {
        TenantGate &g = gates[t.tenant];
        if (t.iopsBudget != 0) {
            g.iops.rate = t.iopsBudget;
            g.iops.burstTicks = bucketBurstTicks(t.burst, t.iopsBudget);
        }
        if (t.bwBudgetKBps != 0) {
            g.bw.rate = t.bwBudgetKBps;
            g.bw.burstTicks =
                bucketBurstTicks(t.burst * pageKB, t.bwBudgetKBps);
        }
    }
}

bool
TracePump::throttledPending() const
{
    for (const TenantGate &g : gates)
        if (!g.deferred.empty())
            return true;
    return false;
}

void
TracePump::admit(const TraceRecord &rec)
{
    TenantGate *g = rec.tenant < gates.size() ? &gates[rec.tenant] : nullptr;
    if (g != nullptr && (g->iops.rate != 0 || g->bw.rate != 0)) {
        const Tick now = eq->now();
        // A non-empty FIFO means earlier records of this tenant are
        // still parked; queue behind them to preserve arrival order.
        if (!g->deferred.empty()) {
            g->deferred.emplace_back(rec, now);
            return;
        }
        const Tick ready =
            std::max(bucketReadyAt(g->iops), bucketReadyAt(g->bw));
        if (ready > now) {
            g->deferred.emplace_back(rec, now);
            g->release =
                eq->scheduleTraceAdmitThrottledAt(ready, *this, rec.tenant);
            return;
        }
        bucketCharge(g->iops, 1, now);
        bucketCharge(g->bw, recordBwCost(rec, pageKB), now);
    }
    ftl->submit(rec);
}

void
TracePump::fireThrottled(TenantId tenant)
{
    TenantGate &g = gates[tenant];
    g.release = EventId{};
    const Tick now = eq->now();
    while (!g.deferred.empty()) {
        const Tick ready =
            std::max(bucketReadyAt(g.iops), bucketReadyAt(g.bw));
        if (ready > now) {
            g.release = eq->scheduleTraceAdmitThrottledAt(ready, *this,
                                                          tenant);
            return;
        }
        const TraceRecord rec = g.deferred.front().first;
        const Tick parked = g.deferred.front().second;
        g.deferred.pop_front();
        bucketCharge(g.iops, 1, now);
        bucketCharge(g.bw, recordBwCost(rec, pageKB), now);
        stats->throttleDeferrals += 1;
        stats->throttleDeferredTicks += now - parked;
        if (stats->tenantTrackingEnabled() && rec.tenant < stats->tenants.size()) {
            stats->tenants[rec.tenant].throttleDeferrals += 1;
            stats->tenants[rec.tenant].throttleDeferredTicks += now - parked;
        }
        ftl->submit(rec);
    }
}

void
TracePump::fire()
{
    for (;;) {
        admit(pending);
        hasPending = stream->next(pending);
        if (!hasPending || eq->now() >= deadline)
            return;
        const Tick due_raw = base + pending.arrival;
        const Tick due = due_raw < eq->now() ? eq->now() : due_raw;
        // Admit the next record inline only when that is provably
        // identical to the one-event-per-record pump this replaced: a
        // pump event scheduled at now() with nothing else pending at
        // now() would fire immediately next anyway.
        if (due <= eq->now() && eq->nextEventTick() > eq->now())
            continue;
        eq->scheduleTraceAdmitAt(due, *this);
        return;
    }
}

} // namespace aero
