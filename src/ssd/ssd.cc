#include "ssd/ssd.hh"

#include "common/logging.hh"

namespace aero
{

Ssd::Ssd(const SsdConfig &cfg_) : cfg(cfg_)
{
    ftlImpl = std::make_unique<Ftl>(cfg, eq);
    if (cfg.prefillFraction > 0.0) {
        ftlImpl->prefill();
        const auto overwrites = static_cast<std::uint64_t>(
            static_cast<double>(cfg.logicalPages()) *
            cfg.warmupOverwriteFraction);
        ftlImpl->warmup(overwrites);
    }
}

void
Ssd::run(const Trace &trace)
{
    run(trace, kTickMax);
}

void
Ssd::run(const Trace &trace, Tick deadline)
{
    if (trace.empty())
        return;
    // Feed arrivals incrementally: each arrival event submits its record
    // and schedules the next one, keeping the queue small. The queue is
    // always drained before returning (the deadline only stops *new*
    // arrivals), so the self-referencing pump callback cannot dangle.
    const Tick base = eq.now();
    auto cursor = std::make_shared<std::size_t>(0);
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [this, &trace, cursor, base, deadline, weak =
             std::weak_ptr<std::function<void()>>(pump)] {
        const auto i = (*cursor)++;
        ftlImpl->submit(trace[i]);
        if (*cursor < trace.size() && eq.now() < deadline) {
            const Tick next = base + trace[*cursor].arrival;
            auto self = weak.lock();
            AERO_CHECK(self, "trace pump expired early");
            eq.scheduleAt(next < eq.now() ? eq.now() : next, *self);
        }
    };
    eq.scheduleAt(base + trace.front().arrival, *pump);
    eq.run();
    AERO_CHECK(ftlImpl->drained(), "event queue drained with in-flight "
               "requests: FTL lost a completion");
    metrics().simulatedTime = eq.now();
}

} // namespace aero
