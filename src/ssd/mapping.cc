#include "ssd/mapping.hh"

#include "common/logging.hh"

namespace aero
{

PageMapping::PageMapping(std::uint64_t logical_pages, int chips_,
                         int blocks_per_chip, int pages_per_block)
    : chips(chips_), blocksPerChip(blocks_per_chip),
      pagesPerBlock(pages_per_block),
      l2p(logical_pages, kInvalidPpn),
      p2l(static_cast<std::size_t>(chips_) * blocks_per_chip *
              pages_per_block,
          kInvalidLpn),
      validCount(static_cast<std::size_t>(chips_) * blocks_per_chip, 0)
{
    AERO_CHECK(logical_pages <= p2l.size(),
               "logical space exceeds physical space");
}

Ppn
PageMapping::lookup(Lpn lpn) const
{
    AERO_CHECK(lpn < l2p.size(), "LPN out of range: ", lpn);
    return l2p[lpn];
}

Lpn
PageMapping::reverseLookup(Ppn ppn) const
{
    AERO_CHECK(ppn < p2l.size(), "PPN out of range: ", ppn);
    return p2l[ppn];
}

Ppn
PageMapping::update(Lpn lpn, Ppn ppn)
{
    AERO_CHECK(lpn < l2p.size(), "LPN out of range: ", lpn);
    AERO_CHECK(ppn < p2l.size(), "PPN out of range: ", ppn);
    AERO_CHECK(p2l[ppn] == kInvalidLpn,
               "programming a PPN that is still mapped: ", ppn);
    const Ppn old = l2p[lpn];
    if (old != kInvalidPpn) {
        const auto parts = decode(old);
        p2l[old] = kInvalidLpn;
        validCount[blockIndex(parts.chip, parts.block)] -= 1;
        AERO_CHECK(validCount[blockIndex(parts.chip, parts.block)] >= 0,
                   "negative valid count");
    } else {
        ++mapped;
    }
    l2p[lpn] = ppn;
    p2l[ppn] = lpn;
    const auto parts = decode(ppn);
    validCount[blockIndex(parts.chip, parts.block)] += 1;
    return old;
}

void
PageMapping::invalidateLpn(Lpn lpn)
{
    AERO_CHECK(lpn < l2p.size(), "LPN out of range: ", lpn);
    const Ppn old = l2p[lpn];
    if (old == kInvalidPpn)
        return;
    const auto parts = decode(old);
    p2l[old] = kInvalidLpn;
    validCount[blockIndex(parts.chip, parts.block)] -= 1;
    l2p[lpn] = kInvalidPpn;
    --mapped;
}

int
PageMapping::validPages(int chip, BlockId block) const
{
    return validCount[blockIndex(chip, block)];
}

void
PageMapping::onBlockErased(int chip, BlockId block)
{
    AERO_CHECK(validPages(chip, block) == 0,
               "erasing a block with valid pages");
    // Clear any stale reverse entries (invalid pages).
    const Ppn base = encode(chip, block, 0);
    for (int p = 0; p < pagesPerBlock; ++p)
        p2l[base + p] = kInvalidLpn;
}

Ppn
PageMapping::encode(int chip, BlockId block, int page) const
{
    return (static_cast<Ppn>(chip) * blocksPerChip + block) *
               pagesPerBlock + page;
}

PpnParts
PageMapping::decode(Ppn ppn) const
{
    PpnParts parts;
    parts.page = static_cast<int>(ppn % pagesPerBlock);
    const Ppn blk = ppn / pagesPerBlock;
    parts.block = static_cast<BlockId>(blk % blocksPerChip);
    parts.chip = static_cast<int>(blk / blocksPerChip);
    return parts;
}

std::size_t
PageMapping::blockIndex(int chip, BlockId block) const
{
    AERO_CHECK(chip >= 0 && chip < chips, "chip out of range");
    AERO_CHECK(block < static_cast<BlockId>(blocksPerChip),
               "block out of range");
    return static_cast<std::size_t>(chip) * blocksPerChip + block;
}

} // namespace aero
