#include "ssd/chip_agent.hh"

#include <algorithm>

#include "common/logging.hh"

namespace aero
{

ChipAgent::ChipAgent(int chip_idx, NandChip &chip, EraseScheme &scheme_,
                     EventQueue &eq_, const SsdConfig &cfg_,
                     Channel &channel_, FtlCallbacks &ftl_,
                     SsdMetrics &metrics_)
    : chipIdx(chip_idx), nand(chip), scheme(scheme_), eq(eq_), cfg(cfg_),
      channel(channel_), ftl(ftl_), metrics(metrics_)
{
}

bool
ChipAgent::idle() const
{
    return !busy && readQ.empty() && writeQ.empty() && gcQ.empty() &&
           eraseQ.empty() && !erase.has_value();
}

std::size_t
ChipAgent::queuedOps() const
{
    return readQ.size() + writeQ.size() + gcQ.size() + eraseQ.size();
}

void
ChipAgent::push(const PageOp &op)
{
    switch (op.kind) {
      case PageOp::Kind::UserRead:
        readQ.push_back(op);
        // Erase suspension: preempt an in-flight erase segment so the
        // read does not wait several milliseconds.
        if (busy && inEraseSegment &&
            cfg.suspension == SuspensionMode::MidSegment &&
            erase && !erase->paused &&
            erase->suspensionsThisOp < kMaxSuspensionsPerOp) {
            // Invalidate the scheduled segment completion.
            const bool cancelled = eq.cancel(pendingOp);
            AERO_CHECK(cancelled,
                       "suspension found no pending segment event");
            erase->paused = true;
            erase->pausedRemaining = opEnd - eq.now();
            erase->suspensionsThisOp += 1;
            metrics.eraseSuspensions += 1;
            inEraseSegment = false;
            // The chip stays busy while the erase voltage quiesces.
            opEnd = eq.now() + cfg.suspendEntryLatency;
            pendingOp = eq.scheduleSuspendQuiesceAt(opEnd, *this);
        }
        break;
      case PageOp::Kind::UserWrite:
        writeQ.push_back(op);
        break;
      case PageOp::Kind::GcRead:
      case PageOp::Kind::GcWrite:
        gcQ.push_back(op);
        break;
    }
}

void
ChipAgent::enqueue(const PageOp &op)
{
    push(op);
    dispatch();
}

void
ChipAgent::enqueueDeferred(const PageOp &op)
{
    push(op);
}

void
ChipAgent::enqueueErase(BlockId block, GcJob *job)
{
    eraseQ.emplace_back(block, job);
    dispatch();
}

void
ChipAgent::dispatch()
{
    if (busy)
        return;
    // 1. User reads first: the latency-critical path.
    if (!readQ.empty()) {
        PageOp op = readQ.front();
        readQ.pop_front();
        startRead(op);
        return;
    }
    // 2. A suspended erase segment owns the cell array mid-pulse; it must
    //    complete before any other operation can use the chip.
    if (erase && erase->paused) {
        resumeErase();
        return;
    }
    // 3. Out-of-space erase beats writes: the writes need its free block.
    const bool have_erase_work = erase.has_value() || !eraseQ.empty();
    if (have_erase_work) {
        const BlockId blk = erase ? erase->block : eraseQ.front().first;
        if (ftl.eraseUrgent(chipIdx, blk)) {
            startEraseWork();
            return;
        }
    }
    // 4. User writes.
    if (!writeQ.empty()) {
        PageOp op = writeQ.front();
        writeQ.pop_front();
        startWrite(op);
        return;
    }
    // 5. GC page migrations.
    if (!gcQ.empty()) {
        PageOp op = gcQ.front();
        gcQ.pop_front();
        if (op.kind == PageOp::Kind::GcRead)
            startRead(op);
        else
            startWrite(op);
        return;
    }
    // 6. Background erase work.
    if (have_erase_work) {
        startEraseWork();
        return;
    }
}

void
ChipAgent::startRead(PageOp op)
{
    busy = true;
    inEraseSegment = false;
    const Tick sense_done = eq.now() + nand.params().tRead;
    const Tick xfer_start = std::max(sense_done, channel.busyUntil);
    const Tick end = xfer_start + cfg.channelXferPerPage;
    channel.busyUntil = end;
    opEnd = end;
    pendingOp = eq.scheduleChipOpAt(end, *this, op);
}

void
ChipAgent::startWrite(PageOp op)
{
    busy = true;
    inEraseSegment = false;
    const Tick xfer_start = std::max(eq.now(), channel.busyUntil);
    const Tick xfer_end = xfer_start + cfg.channelXferPerPage;
    channel.busyUntil = xfer_end;
    const Tick tprog = op.tprog ? op.tprog : nand.params().tProg;
    const Tick end = xfer_end + tprog;
    opEnd = end;
    pendingOp = eq.scheduleChipOpAt(end, *this, op);
}

void
ChipAgent::onChipOpComplete(const PageOp &op)
{
    pendingOp = EventId{};
    busy = false;
    ftl.onPageOpDone(op);
    dispatch();
}

void
ChipAgent::onEraseSegmentDone()
{
    pendingOp = EventId{};
    finishEraseSegment();
}

void
ChipAgent::onSuspendQuiesced()
{
    pendingOp = EventId{};
    busy = false;
    dispatch();
}

void
ChipAgent::startEraseWork()
{
    if (!erase) {
        AERO_CHECK(!eraseQ.empty(), "no erase work to start");
        auto [block, job] = eraseQ.front();
        eraseQ.pop_front();
        ActiveErase ae;
        ae.session = scheme.begin(block);
        ae.block = block;
        ae.job = job;
        erase.emplace(std::move(ae));
    }
    // Perform the next loop functionally; charge its duration.
    const bool more = erase->session->nextSegment(erase->seg);
    AERO_CHECK(more, "erase session exhausted unexpectedly");
    busy = true;
    inEraseSegment = true;
    opEnd = eq.now() + erase->seg.duration;
    metrics.eraseBusyTime += erase->seg.duration;
    pendingOp = eq.scheduleEraseSegmentAt(opEnd, *this);
}

void
ChipAgent::resumeErase()
{
    AERO_CHECK(erase && erase->paused, "resume without paused erase");
    busy = true;
    inEraseSegment = true;
    erase->paused = false;
    const Tick dur = cfg.suspendResumeOverhead + erase->pausedRemaining;
    opEnd = eq.now() + dur;
    metrics.eraseBusyTime += cfg.suspendResumeOverhead;
    pendingOp = eq.scheduleEraseSegmentAt(opEnd, *this);
}

void
ChipAgent::finishEraseSegment()
{
    busy = false;
    inEraseSegment = false;
    if (erase->seg.last) {
        const EraseOutcome outcome = erase->session->outcome();
        metrics.erases += 1;
        metrics.eraseLoops += outcome.loops;
        const BlockId block = erase->block;
        GcJob *job = erase->job;
        erase.reset();
        ftl.onEraseDone(chipIdx, block, outcome, job);
        dispatch();
        return;
    }
    // The erase operation is atomic at the chip interface: continue with
    // the next loop immediately. Queued reads get in only via suspension.
    startEraseWork();
}

} // namespace aero
