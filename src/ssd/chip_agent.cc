#include "ssd/chip_agent.hh"

#include <algorithm>

#include "common/logging.hh"

namespace aero
{

ChipAgent::ChipAgent(int chip_idx, NandChip &chip, EraseScheme &scheme_,
                     EventQueue &eq_, const SsdConfig &cfg_,
                     Channel &channel_, FtlCallbacks &ftl_,
                     SsdMetrics &metrics_)
    : chipIdx(chip_idx), nand(chip), scheme(scheme_), eq(eq_), cfg(cfg_),
      channel(channel_), ftl(ftl_), metrics(metrics_)
{
}

bool
ChipAgent::idle() const
{
    return !busy && readQ.empty() && writeQ.empty() && gcQ.empty() &&
           eraseQ.empty() && !erase.has_value();
}

std::size_t
ChipAgent::queuedOps() const
{
    return readQ.size() + writeQ.size() + gcQ.size() + eraseQ.size();
}

void
ChipAgent::push(const PageOp &op)
{
    switch (op.kind) {
      case PageOp::Kind::UserRead:
        readQ.push_back(op);
        // Erase suspension: preempt an in-flight erase segment so the
        // read does not wait several milliseconds.
        if (busy && inEraseSegment &&
            cfg.suspension == SuspensionMode::MidSegment &&
            erase && !erase->paused &&
            erase->suspensionsThisOp < kMaxSuspensionsPerOp) {
            // Invalidate the scheduled segment completion.
            const bool cancelled = eq.cancel(pendingOp);
            AERO_CHECK(cancelled,
                       "suspension found no pending segment event");
            erase->paused = true;
            erase->pausedRemaining = opEnd - eq.now();
            erase->suspensionsThisOp += 1;
            metrics.eraseSuspensions += 1;
            inEraseSegment = false;
            // The chip stays busy while the erase voltage quiesces.
            opEnd = eq.now() + cfg.suspendEntryLatency;
            pendingOp = eq.scheduleSuspendQuiesceAt(opEnd, *this);
        }
        break;
      case PageOp::Kind::UserWrite:
        writeQ.push_back(op);
        break;
      case PageOp::Kind::GcRead:
      case PageOp::Kind::GcWrite:
        gcQ.push_back(op);
        break;
    }
}

void
ChipAgent::enqueue(const PageOp &op)
{
    push(op);
    dispatch();
}

void
ChipAgent::enqueueDeferred(const PageOp &op)
{
    push(op);
}

void
ChipAgent::enqueueErase(BlockId block, GcJob *job)
{
    eraseQ.emplace_back(block, job);
    dispatch();
}

void
ChipAgent::dispatch()
{
    if (busy)
        return;
    // 1. User reads first: the latency-critical path.
    if (!readQ.empty()) {
        PageOp op = readQ.front();
        readQ.pop_front();
        startRead(op);
        return;
    }
    // 2. A suspended erase segment owns the cell array mid-pulse; it must
    //    complete before any other operation can use the chip.
    if (erase && erase->paused) {
        resumeErase();
        return;
    }
    // 3. Out-of-space erase beats writes: the writes need its free block.
    const bool have_erase_work = erase.has_value() || !eraseQ.empty();
    if (have_erase_work) {
        const BlockId blk = erase ? erase->block : eraseQ.front().first;
        if (ftl.eraseUrgent(chipIdx, blk)) {
            startEraseWork();
            return;
        }
    }
    // 4. User writes.
    if (!writeQ.empty()) {
        PageOp op = writeQ.front();
        writeQ.pop_front();
        startWrite(op);
        return;
    }
    // 5. GC page migrations.
    if (!gcQ.empty()) {
        PageOp op = gcQ.front();
        gcQ.pop_front();
        if (op.kind == PageOp::Kind::GcRead)
            startRead(op);
        else
            startWrite(op);
        return;
    }
    // 6. Background erase work.
    if (have_erase_work) {
        startEraseWork();
        return;
    }
}

BusClass
ChipAgent::busClassOf(const PageOp &op) const
{
    switch (op.kind) {
      case PageOp::Kind::UserRead: return BusClass::HostRead;
      case PageOp::Kind::UserWrite: return BusClass::HostWrite;
      case PageOp::Kind::GcRead:
      case PageOp::Kind::GcWrite: return BusClass::GcCopy;
    }
    return BusClass::HostRead;
}

void
ChipAgent::startRead(PageOp op)
{
    busy = true;
    inEraseSegment = false;
    if (queued()) {
        // Two-phase: run the on-die sense to completion, then compete
        // for the channel; the transfer is scheduled at grant time.
        curOp = op;
        phase = Phase::Sense;
        opEnd = eq.now() + nand.params().tRead;
        pendingOp = eq.scheduleDieOpAt(opEnd, *this);
        return;
    }
    const Tick sense_done = eq.now() + nand.params().tRead;
    const Tick xfer_start = std::max(sense_done, channel.busyUntil);
    const Tick end = xfer_start + cfg.channelXferPerPage;
    channel.busyUntil = end;
    if (static_cast<std::size_t>(channel.index()) <
        metrics.channelBusyTicks.size())
        metrics.channelBusyTicks[channel.index()] += cfg.channelXferPerPage;
    opEnd = end;
    pendingOp = eq.scheduleChipOpAt(end, *this, op);
}

void
ChipAgent::startWrite(PageOp op)
{
    busy = true;
    inEraseSegment = false;
    if (queued()) {
        // The data-in transfer needs the bus first; the on-die program
        // starts once the transfer lands.
        curOp = op;
        phase = Phase::AwaitBus;
        channel.request(*this, busClassOf(op), op.tenant);
        return;
    }
    const Tick xfer_start = std::max(eq.now(), channel.busyUntil);
    const Tick xfer_end = xfer_start + cfg.channelXferPerPage;
    channel.busyUntil = xfer_end;
    if (static_cast<std::size_t>(channel.index()) <
        metrics.channelBusyTicks.size())
        metrics.channelBusyTicks[channel.index()] += cfg.channelXferPerPage;
    const Tick tprog = op.tprog ? op.tprog : nand.params().tProg;
    const Tick end = xfer_end + tprog;
    opEnd = end;
    pendingOp = eq.scheduleChipOpAt(end, *this, op);
}

void
ChipAgent::onDieOpComplete()
{
    pendingOp = EventId{};
    AERO_CHECK(phase == Phase::Sense, "die op completed outside a sense");
    phase = Phase::AwaitBus;
    channel.request(*this, busClassOf(curOp), curOp.tenant);
}

Tick
ChipAgent::channelGranted()
{
    const Tick now = eq.now();
    if (phase == Phase::EraseAwaitBus) {
        // The bus carries only the command; the pulse runs on-die.
        const Tick cmd_end = now + cfg.channelCmdOverhead;
        const bool more = erase->session->nextSegment(erase->seg);
        AERO_CHECK(more, "erase session exhausted unexpectedly");
        phase = Phase::None;
        inEraseSegment = true;
        opEnd = cmd_end + erase->seg.duration;
        metrics.eraseBusyTime += erase->seg.duration;
        pendingOp = eq.scheduleEraseSegmentAt(opEnd, *this);
        return cmd_end;
    }
    AERO_CHECK(phase == Phase::AwaitBus, "channel grant without a waiter");
    phase = Phase::Xfer;
    const Tick xfer_end = now + cfg.channelXferPerPage;
    if (curOp.kind == PageOp::Kind::UserRead ||
        curOp.kind == PageOp::Kind::GcRead) {
        // Sense already ran; the op completes when the data is out.
        opEnd = xfer_end;
    } else {
        const Tick tprog = curOp.tprog ? curOp.tprog : nand.params().tProg;
        opEnd = xfer_end + tprog;
    }
    pendingOp = eq.scheduleChipOpAt(opEnd, *this, curOp);
    return xfer_end;
}

void
ChipAgent::onChipOpComplete(const PageOp &op)
{
    pendingOp = EventId{};
    busy = false;
    phase = Phase::None;
    ftl.onPageOpDone(op);
    dispatch();
}

void
ChipAgent::onEraseSegmentDone()
{
    pendingOp = EventId{};
    finishEraseSegment();
}

void
ChipAgent::onSuspendQuiesced()
{
    pendingOp = EventId{};
    busy = false;
    dispatch();
}

void
ChipAgent::startEraseWork()
{
    if (!erase) {
        AERO_CHECK(!eraseQ.empty(), "no erase work to start");
        auto [block, job] = eraseQ.front();
        eraseQ.pop_front();
        ActiveErase ae;
        ae.session = scheme.begin(block);
        ae.block = block;
        ae.job = job;
        erase.emplace(std::move(ae));
    }
    if (queued()) {
        // Every segment's command issue competes for the channel with
        // host and GC transfers; the segment itself runs at grant time.
        busy = true;
        inEraseSegment = false;
        phase = Phase::EraseAwaitBus;
        channel.request(*this, BusClass::EraseCmd);
        return;
    }
    // Perform the next loop functionally; charge its duration.
    const bool more = erase->session->nextSegment(erase->seg);
    AERO_CHECK(more, "erase session exhausted unexpectedly");
    busy = true;
    inEraseSegment = true;
    opEnd = eq.now() + erase->seg.duration;
    metrics.eraseBusyTime += erase->seg.duration;
    pendingOp = eq.scheduleEraseSegmentAt(opEnd, *this);
}

void
ChipAgent::resumeErase()
{
    AERO_CHECK(erase && erase->paused, "resume without paused erase");
    busy = true;
    inEraseSegment = true;
    erase->paused = false;
    const Tick dur = cfg.suspendResumeOverhead + erase->pausedRemaining;
    opEnd = eq.now() + dur;
    metrics.eraseBusyTime += cfg.suspendResumeOverhead;
    pendingOp = eq.scheduleEraseSegmentAt(opEnd, *this);
}

void
ChipAgent::finishEraseSegment()
{
    busy = false;
    inEraseSegment = false;
    if (erase->seg.last) {
        const EraseOutcome outcome = erase->session->outcome();
        metrics.erases += 1;
        metrics.eraseLoops += outcome.loops;
        const BlockId block = erase->block;
        GcJob *job = erase->job;
        erase.reset();
        ftl.onEraseDone(chipIdx, block, outcome, job);
        dispatch();
        return;
    }
    // The erase operation is atomic at the chip interface: continue with
    // the next loop immediately. Queued reads get in only via suspension.
    startEraseWork();
}

} // namespace aero
