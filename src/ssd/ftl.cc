#include "ssd/ftl.hh"

#include "common/logging.hh"
#include "core/aero_scheme.hh"
#include "ssd/geometry.hh"

namespace aero
{

SsdConfig
Ftl::validated(SsdConfig cfg)
{
    // Runs before the mem-initializer list sizes any member off the
    // geometry, so a misconfigured drive dies with a clear message
    // instead of a huge allocation.
    const DriveGeometry geo = DriveGeometry::of(cfg);
    if (cfg.arbitration == Arbitration::Queued)
        geo.validateQueued();
    else
        geo.validate();
    if (sloPolicyWeights(cfg.sloPolicy) &&
        cfg.arbitration != Arbitration::Queued)
        AERO_FATAL("SLO policy '", sloPolicyName(cfg.sloPolicy),
                   "' needs queued channel arbitration: weighted-fair "
                   "sharing arbitrates the per-channel grant queues, "
                   "which the legacy closed-form model does not have");
    return cfg;
}

Ftl::Ftl(const SsdConfig &cfg_, EventQueue &eq_)
    : cfg(validated(cfg_)), eq(eq_),
      mapping(cfg.logicalPages(), cfg.totalChips(),
              cfg.blocksPerChip(), cfg.geometry.pagesPerBlock),
      blocks(cfg)
{
    const auto params = ChipParams::forType(cfg.chipType);
    Rng seeder(cfg.seed);
    chips.reserve(cfg.totalChips());
    for (int i = 0; i < cfg.totalChips(); ++i) {
        chips.emplace_back(params, cfg.geometry, seeder.next(),
                           seeder.lognormFactor(params.chipPvSigma));
    }
    preAge(cfg.initialPec);
    channels.resize(cfg.channels);
    stats.channelBusyTicks.assign(cfg.channels, 0);
    for (int c = 0; c < cfg.channels; ++c)
        channels[c].init(c, &eq, &stats);
    if (sloPolicyWeights(cfg.sloPolicy) && !cfg.slo.empty()) {
        std::vector<std::uint32_t> weights(
            static_cast<std::size_t>(cfg.slo.maxTenant()) + 1, 1);
        for (const TenantSlo &t : cfg.slo.tenants)
            weights[t.tenant] = t.weight;
        for (auto &ch : channels)
            ch.enableWfq(weights);
    }
    for (int i = 0; i < cfg.totalChips(); ++i) {
        SchemeOptions opts = cfg.schemeOptions;
        opts.seed = seeder.next();
        schemes.push_back(makeEraseScheme(cfg.scheme, chips[i], opts));
    }
    for (int i = 0; i < cfg.totalChips(); ++i) {
        agents.push_back(std::make_unique<ChipAgent>(
            i, chips[i], *schemes[i], eq, cfg,
            channels[i / cfg.chipsPerChannel], *this, stats));
    }
    gcJobs.resize(static_cast<std::size_t>(cfg.totalChips()) *
                  cfg.geometry.planes);
    gcPolicy = makeGcPolicy(cfg.gcPolicy);
    wlPolicy = makeWearLevelPolicy(cfg.wearLevel);
    lines = std::make_unique<LineManager>(cfg, *gcPolicy, blocks);
    blocks.setLineManager(lines.get());
    blocks.setWearPolicy(wlPolicy.get());
    burstTouched.assign(cfg.totalChips(), 0);
    burstChips.reserve(cfg.totalChips());
}

Ftl::~Ftl() = default;

NandChip &
Ftl::chipAt(int i)
{
    AERO_CHECK(i >= 0 && i < static_cast<int>(chips.size()),
               "chip index out of range");
    return chips[i];
}

EraseScheme &
Ftl::schemeAt(int i)
{
    return *schemes.at(i);
}

ChipAgent &
Ftl::agentAt(int i)
{
    return *agents.at(i);
}

void
Ftl::preAge(double pec)
{
    if (pec <= 0.0)
        return;
    for (auto &chip : chips) {
        for (int b = 0; b < chip.numBlocks(); ++b)
            chip.ageBaseline(static_cast<BlockId>(b),
                             static_cast<int>(pec));
    }
}

void
Ftl::prefill()
{
    const auto total = static_cast<Lpn>(
        static_cast<double>(cfg.logicalPages()) * cfg.prefillFraction);
    for (Lpn lpn = 0; lpn < total; ++lpn) {
        const int tries = cfg.totalChips() * cfg.geometry.planes;
        bool placed = false;
        for (int t = 0; t < tries && !placed; ++t) {
            const int key = (writePointer + t) % tries;
            const int chip = key / cfg.geometry.planes;
            const int plane = key % cfg.geometry.planes;
            // Keep the GC headroom: never prefill below the high mark.
            if (blocks.freeBlocks(chip, plane) <= cfg.gcHighWatermark)
                continue;
            BlockId blk;
            int page;
            if (!blocks.allocate(chip, plane, blk, page))
                continue;
            remap(lpn, mapping.encode(chip, blk, page));
            chips[chip].programPage(blk);
            placed = true;
            writePointer = (key + 1) % tries;
        }
        if (!placed) {
            AERO_WARN("prefill stopped early at LPN ", lpn, " of ", total);
            break;
        }
    }
}

void
Ftl::warmup(std::uint64_t overwrites)
{
    Rng rng(cfg.seed ^ 0x3a3aULL);
    const auto span = static_cast<Lpn>(
        static_cast<double>(cfg.logicalPages()) * cfg.prefillFraction);
    if (span == 0)
        return;
    const int tries = cfg.totalChips() * cfg.geometry.planes;
    for (std::uint64_t i = 0; i < overwrites; ++i) {
        const Lpn lpn = rng.below(span);
        bool placed = false;
        for (int t = 0; t < tries && !placed; ++t) {
            const int key = (writePointer + t) % tries;
            const int chip = key / cfg.geometry.planes;
            const int plane = key % cfg.geometry.planes;
            BlockId blk;
            int page;
            if (!blocks.allocate(chip, plane, blk, page))
                continue;
            writePointer = (key + 1) % tries;
            remap(lpn, mapping.encode(chip, blk, page));
            chips[chip].programPage(blk);
            placed = true;
            if (blocks.freeBlocks(chip, plane) <= cfg.gcLowWatermark)
                functionalGc(chip, plane);
        }
        AERO_CHECK(placed, "warmup could not place a write");
    }
}

void
Ftl::remap(Lpn lpn, Ppn ppn)
{
    const auto parts = mapping.decode(ppn);
    const Ppn old = mapping.update(lpn, ppn);
    lines->onPageMapped(parts.chip, parts.block);
    if (old != kInvalidPpn) {
        const auto prev = mapping.decode(old);
        lines->onPageInvalidated(prev.chip, prev.block);
    }
}

void
Ftl::functionalGc(int chip, int plane)
{
    // Inline, timing-free GC used only during warmup.
    while (blocks.freeBlocks(chip, plane) <= cfg.gcLowWatermark) {
        const BlockId victim = lines->pickVictim(chip, plane);
        if (victim == kInvalidBlock)
            return;
        if (mapping.validPages(chip, victim) >=
            cfg.geometry.pagesPerBlock) {
            return;  // nothing reclaimable yet: all pages still live
        }
        for (int p = 0; p < cfg.geometry.pagesPerBlock; ++p) {
            const Ppn ppn = mapping.encode(chip, victim, p);
            const Lpn lpn = mapping.reverseLookup(ppn);
            if (lpn == kInvalidLpn)
                continue;
            // Relocate within the plane (other blocks have room: the
            // victim frees at least as many pages as it consumes).
            BlockId dst;
            int dpage;
            bool ok = blocks.allocate(chip, plane, dst, dpage, true);
            AERO_CHECK(ok && dst != victim,
                       "warmup GC ran out of destination space");
            remap(lpn, mapping.encode(chip, dst, dpage));
            chips[chip].programPage(dst);
        }
        eraseNow(*schemes[chip], victim);
        mapping.onBlockErased(chip, victim);
        blocks.onBlockErased(chip, victim);
        warmupEraseCount += 1;
    }
}

void
Ftl::submit(const TraceRecord &rec)
{
    const std::uint64_t id = nextRequestId++;
    inflight.emplace(id, InflightRequest{rec.op, eq.now(), rec.pages,
                                         rec.tenant});
    if (rec.op == IoOp::Read) {
        // Reads are side-effect free at admission, so a multi-page
        // request queues as a burst: one dispatch pass per touched chip
        // instead of one per page. Writes keep per-page dispatch — a
        // write can trip the GC watermark and enqueue an urgent erase,
        // which must see the queues exactly as sequential admission
        // would leave them.
        for (std::uint32_t i = 0; i < rec.pages; ++i) {
            const Lpn lpn = (rec.startPage + i) % mapping.logicalPages();
            submitReadPage(lpn, id, rec.tenant, true);
        }
        flushReadBurst();
        return;
    }
    for (std::uint32_t i = 0; i < rec.pages; ++i) {
        const Lpn lpn = (rec.startPage + i) % mapping.logicalPages();
        if (!submitWritePage(lpn, id, rec.tenant))
            stalledWrites.push_back(StalledWrite{lpn, id, rec.tenant});
    }
}

void
Ftl::submitReadPage(Lpn lpn, std::uint64_t request_id, TenantId tenant,
                    bool burst)
{
    const Ppn ppn = mapping.lookup(lpn);
    if (ppn == kInvalidPpn) {
        // Never-written page: the controller answers from the mapping
        // table without touching flash.
        stats.unmappedReads += 1;
        eq.scheduleHostPageAt(eq.now() + cfg.hostOverhead, *this,
                              request_id);
        return;
    }
    const auto parts = mapping.decode(ppn);
    PageOp op;
    op.kind = PageOp::Kind::UserRead;
    op.lpn = lpn;
    op.ppn = ppn;
    op.requestId = request_id;
    op.tenant = tenant;
    if (!burst) {
        agents[parts.chip]->enqueue(op);
        return;
    }
    if (!burstTouched[parts.chip]) {
        burstTouched[parts.chip] = 1;
        burstChips.push_back(parts.chip);
    }
    agents[parts.chip]->enqueueDeferred(op);
}

void
Ftl::flushReadBurst()
{
    // First-touch order keeps channel reservations identical to the
    // page-at-a-time admission this replaced.
    for (const int chip : burstChips) {
        burstTouched[chip] = 0;
        agents[chip]->flush();
    }
    burstChips.clear();
}

bool
Ftl::submitWritePage(Lpn lpn, std::uint64_t request_id, TenantId tenant)
{
    const int tries = cfg.totalChips() * cfg.geometry.planes;
    for (int t = 0; t < tries; ++t) {
        const int key = (writePointer + t) % tries;
        const int chip = key / cfg.geometry.planes;
        const int plane = key % cfg.geometry.planes;
        BlockId blk;
        int page;
        if (!blocks.allocate(chip, plane, blk, page))
            continue;
        writePointer = (key + 1) % tries;
        const Ppn ppn = mapping.encode(chip, blk, page);
        remap(lpn, ppn);
        chips[chip].programPage(blk);  // functional effect at issue
        PageOp op;
        op.kind = PageOp::Kind::UserWrite;
        op.lpn = lpn;
        op.ppn = ppn;
        op.requestId = request_id;
        op.tenant = tenant;
        op.tprog = schemes[chip]->programLatency(blk);
        agents[chip]->enqueue(op);
        maybeStartGc(chip, plane);
        return true;
    }
    return false;
}

void
Ftl::completeRequestPage(std::uint64_t request_id)
{
    auto it = inflight.find(request_id);
    AERO_CHECK(it != inflight.end(), "completion for unknown request");
    auto &req = it->second;
    AERO_CHECK(req.remaining > 0, "request page over-completion");
    if (--req.remaining == 0) {
        const Tick latency = eq.now() - req.arrival + cfg.hostOverhead;
        TenantLatency *tenant = nullptr;
        if (stats.tenantTrackingEnabled()) {
            AERO_CHECK(req.tenant < stats.tenants.size(),
                       "request tenant ", req.tenant,
                       " outside the tracked range");
            tenant = &stats.tenants[req.tenant];
        }
        if (req.op == IoOp::Read) {
            stats.reads += 1;
            stats.readLatency.add(latency);
            if (tenant) {
                tenant->reads += 1;
                tenant->readLatency.add(latency);
            }
        } else {
            stats.writes += 1;
            stats.writeLatency.add(latency);
            if (tenant) {
                tenant->writes += 1;
                tenant->writeLatency.add(latency);
            }
        }
        inflight.erase(it);
    }
}

void
Ftl::onHostPageDone(std::uint64_t request_id)
{
    completeRequestPage(request_id);
}

void
Ftl::onPageOpDone(const PageOp &op)
{
    switch (op.kind) {
      case PageOp::Kind::UserRead:
      case PageOp::Kind::UserWrite:
        completeRequestPage(op.requestId);
        break;
      case PageOp::Kind::GcRead:
        // The victim page may have been overwritten while the read was
        // queued; only relocate pages that are still live.
        if (mapping.reverseLookup(op.ppn) != kInvalidLpn)
            issueGcWrite(op.job, mapping.reverseLookup(op.ppn));
        else
            gcStep(op.job);
        break;
      case PageOp::Kind::GcWrite:
        if (op.job->wearLevel)
            stats.wlMigratedPages += 1;
        else
            stats.gcMigratedPages += 1;
        op.job->migrated += 1;
        gcStep(op.job);
        break;
    }
}

void
Ftl::issueGcWrite(GcJob *job, Lpn lpn)
{
    // Relocate within the victim's plane when possible, falling back to
    // any plane with space (cross-plane copyback via the controller).
    const int tries = cfg.totalChips() * cfg.geometry.planes;
    const int preferred = job->chip * cfg.geometry.planes + job->plane;
    for (int t = 0; t < tries; ++t) {
        const int key = (preferred + t) % tries;
        const int chip = key / cfg.geometry.planes;
        const int plane = key % cfg.geometry.planes;
        BlockId blk;
        int page;
        if (!blocks.allocate(chip, plane, blk, page, true))
            continue;
        const Ppn ppn = mapping.encode(chip, blk, page);
        remap(lpn, ppn);
        chips[chip].programPage(blk);
        PageOp op;
        op.kind = PageOp::Kind::GcWrite;
        op.lpn = lpn;
        op.ppn = ppn;
        op.job = job;
        op.tprog = schemes[chip]->programLatency(blk);
        agents[chip]->enqueue(op);
        return;
    }
    AERO_PANIC("GC found no destination page; drive wedged");
}

void
Ftl::maybeStartGc(int chip, int plane)
{
    if (blocks.freeBlocks(chip, plane) > cfg.gcLowWatermark)
        return;
    auto &slot = gcJobs[planeKey(chip, plane)];
    if (slot)
        return;  // a job is already running on this plane
    const BlockId victim = lines->pickVictim(chip, plane);
    if (victim == kInvalidBlock)
        return;
    slot = std::make_unique<GcJob>();
    slot->chip = chip;
    slot->plane = plane;
    slot->victim = victim;
    activeGcJobs += 1;
    stats.gcInvocations += 1;
    gcStep(slot.get());
}

void
Ftl::maybeStartWearLevel(int chip, int plane)
{
    auto &slot = gcJobs[planeKey(chip, plane)];
    if (slot)
        return;  // the plane is busy (GC restarted first)
    const BlockId victim =
        wlPolicy->pickColdVictim(chip, plane, blocks, cfg.wlEraseDelta);
    if (victim == kInvalidBlock)
        return;
    slot = std::make_unique<GcJob>();
    slot->chip = chip;
    slot->plane = plane;
    slot->victim = victim;
    slot->wearLevel = true;
    activeGcJobs += 1;
    stats.wlInvocations += 1;
    gcStep(slot.get());
}

void
Ftl::gcStep(GcJob *job)
{
    // Advance the scan cursor to the next still-valid page and read it.
    const int pages = cfg.geometry.pagesPerBlock;
    while (job->nextPage < pages) {
        const Ppn ppn =
            mapping.encode(job->chip, job->victim, job->nextPage);
        job->nextPage += 1;
        if (mapping.reverseLookup(ppn) != kInvalidLpn) {
            PageOp op;
            op.kind = PageOp::Kind::GcRead;
            op.ppn = ppn;
            op.job = job;
            agents[job->chip]->enqueue(op);
            return;
        }
    }
    if (!job->eraseIssued) {
        job->eraseIssued = true;
        agents[job->chip]->enqueueErase(job->victim, job);
    }
}

void
Ftl::onEraseDone(int chip, BlockId block, const EraseOutcome &outcome,
                 GcJob *job)
{
    (void)outcome;
    mapping.onBlockErased(chip, block);
    blocks.onBlockErased(chip, block);
    if (job) {
        AERO_CHECK(job->victim == block, "GC job / erase mismatch");
        const bool was_wear_level = job->wearLevel;
        auto &slot = gcJobs[planeKey(chip, job->plane)];
        AERO_CHECK(slot.get() == job, "GC job slot mismatch");
        slot.reset();
        activeGcJobs -= 1;
        retryStalledWrites();
        const int plane = blocks.planeOf(block);
        maybeStartGc(chip, plane);
        // A completed GC cycle may leave the plane's wear spread over the
        // policy threshold; WL never chains off its own erase.
        if (!was_wear_level)
            maybeStartWearLevel(chip, plane);
    }
}

bool
Ftl::eraseUrgent(int chip, BlockId block)
{
    const int plane = blocks.planeOf(block);
    return blocks.freeBlocks(chip, plane) == 0 ||
           !stalledWrites.empty();
}

void
Ftl::retryStalledWrites()
{
    std::deque<StalledWrite> pending;
    pending.swap(stalledWrites);
    for (auto &w : pending) {
        if (!submitWritePage(w.lpn, w.requestId, w.tenant))
            stalledWrites.push_back(w);
    }
}

std::size_t
Ftl::planeKey(int chip, int plane) const
{
    return static_cast<std::size_t>(chip) * cfg.geometry.planes + plane;
}

} // namespace aero
