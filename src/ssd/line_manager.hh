/**
 * @file
 * FEMU-style line manager: tracks every block's fill generation and
 * valid-page count, and keeps the Full blocks of each plane in an
 * indexed min-heap (FEMU's `victim_line_pq`) keyed by the GC policy's
 * (score, tieBreak, block) order. The heap is updated incrementally —
 * O(log n) on block-full, page-invalidation, remap and erase events — so
 * victim selection is a peek instead of the O(blocks) plane rescan it
 * replaced. bruteForceVictim() re-derives the winner by rescanning and
 * exists for the randomized differential tests.
 *
 * The manager learns structural transitions (open/full/erase) from
 * BlockManager's observer hooks and valid-count changes from the FTL's
 * remap path; erase counts are read back from the BlockManager, which
 * owns wear accounting.
 */

#ifndef AERO_SSD_LINE_MANAGER_HH
#define AERO_SSD_LINE_MANAGER_HH

#include <cstddef>
#include <vector>

#include "ssd/config.hh"
#include "ssd/gc.hh"

namespace aero
{

class BlockManager;

class LineManager
{
  public:
    LineManager(const SsdConfig &cfg, const GcPolicy &policy,
                const BlockManager &blocks);

    /** @name Structural transitions (BlockManager observer) */
    /** @{ */
    void onBlockOpened(int chip, BlockId block);
    void onBlockFull(int chip, BlockId block);
    void onBlockErased(int chip, BlockId block);
    /** @} */

    /** @name Valid-count deltas (FTL remap path) */
    /** @{ */
    void onPageMapped(int chip, BlockId block);
    void onPageInvalidated(int chip, BlockId block);
    /** @} */

    /** Best victim of the plane, kInvalidBlock when no block is Full. */
    BlockId pickVictim(int chip, int plane) const;

    /** O(blocks) rescan over the heap members (differential testing). */
    BlockId bruteForceVictim(int chip, int plane) const;

    /** Full blocks currently victim candidates, ascending block id. */
    std::vector<BlockId> fullBlocks(int chip, int plane) const;

    std::size_t fullCount(int chip, int plane) const;

    /** Valid pages as this manager tracks them (tests cross-check). */
    int trackedValid(int chip, BlockId block) const;

    /** Scoring inputs of a block, as the policy would see them. */
    GcLineInfo lineInfo(int chip, BlockId block) const;

  private:
    /** Heap key; lexicographic (score, tie, block), lower wins. */
    struct Key
    {
        double score = 0.0;
        std::uint64_t tie = 0;
        BlockId block = kInvalidBlock;
    };

    struct Line
    {
        int valid = 0;
        std::uint64_t openSeq = 0;
        std::size_t pos = kNoPos;  //!< index in the plane heap, or kNoPos
    };

    struct PlaneHeap
    {
        std::vector<Key> entries;
    };

    static constexpr std::size_t kNoPos = ~static_cast<std::size_t>(0);

    static bool less(const Key &a, const Key &b);

    std::size_t blockIndex(int chip, BlockId block) const;
    std::size_t planeIndex(int chip, int plane) const;
    Key keyFor(int chip, BlockId block) const;
    void siftUp(PlaneHeap &heap, int chip, std::size_t pos);
    void siftDown(PlaneHeap &heap, int chip, std::size_t pos);
    void heapRemove(PlaneHeap &heap, int chip, std::size_t pos);
    /** Re-key `block` and restore heap order (no-op when not Full). */
    void reposition(int chip, BlockId block);

    int numChips;
    int planesPerChip;
    int blocksPerPlane;
    int pagesPerBlock;
    const GcPolicy &policy;
    const BlockManager &blocks;
    std::vector<Line> lines;        //!< per (chip, chip-local block)
    std::vector<PlaneHeap> heaps;   //!< per (chip, plane)
    std::uint64_t nextOpenSeq = 1;  //!< 0 means "never opened"
};

} // namespace aero

#endif // AERO_SSD_LINE_MANAGER_HH
