/**
 * @file
 * Top-level simulated SSD: owns the event queue and the FTL, replays
 * traces, and exposes run metrics. This is the library's main entry point
 * for system-level experiments (see examples/quickstart.cpp).
 */

#ifndef AERO_SSD_SSD_HH
#define AERO_SSD_SSD_HH

#include <memory>

#include "ssd/ftl.hh"
#include "workload/trace_io/stream.hh"

namespace aero
{

/**
 * Feeds trace arrivals into the FTL as tagged kernel events. Each firing
 * admits every record already due, then schedules one event for the next
 * future arrival — the queue holds at most one pump event at a time.
 * The pump pulls from a TraceStream one record ahead, so replay memory
 * is the stream's (one chunk for FileTraceStream), never the trace's.
 * Lives on Ssd::run()'s stack; run() drains the queue before returning,
 * so pending pump events cannot dangle.
 */
struct TracePump
{
    Ftl *ftl = nullptr;
    EventQueue *eq = nullptr;
    TraceStream *stream = nullptr;
    TraceRecord pending;    //!< next record to admit (valid iff hasPending)
    bool hasPending = false;
    Tick base = 0;          //!< eq->now() when the replay started
    Tick deadline = kTickMax;

    /** Kernel dispatch target: admit the due records. */
    void fire();
};

class Ssd
{
  public:
    /**
     * Build a drive: constructs chips, pre-ages them to cfg.initialPec,
     * and prefills the logical space to steady state.
     */
    explicit Ssd(const SsdConfig &cfg);

    /**
     * Replay a trace to completion (all requests serviced). Can be called
     * repeatedly; time continues monotonically.
     */
    void run(const Trace &trace);

    /** Replay and also force-quiesce after `deadline` of simulated time. */
    void run(const Trace &trace, Tick deadline);

    /**
     * Replay from a pull stream — the admission path every overload
     * funnels into. Only one record is resident at a time beyond the
     * stream's own buffering, so multi-billion-request file traces
     * replay in O(chunk) memory.
     */
    void run(TraceStream &stream);
    void run(TraceStream &stream, Tick deadline);

    SsdMetrics &metrics() { return ftlImpl->metrics(); }
    Ftl &ftl() { return *ftlImpl; }
    EventQueue &eventQueue() { return eq; }
    const SsdConfig &config() const { return cfg; }

  private:
    SsdConfig cfg;
    EventQueue eq;
    std::unique_ptr<Ftl> ftlImpl;
};

} // namespace aero

#endif // AERO_SSD_SSD_HH
