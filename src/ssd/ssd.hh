/**
 * @file
 * Top-level simulated SSD: owns the event queue and the FTL, replays
 * traces, and exposes run metrics. This is the library's main entry point
 * for system-level experiments (see examples/quickstart.cpp).
 */

#ifndef AERO_SSD_SSD_HH
#define AERO_SSD_SSD_HH

#include <deque>
#include <memory>
#include <utility>

#include "ssd/ftl.hh"
#include "workload/trace_io/stream.hh"

namespace aero
{

/**
 * Feeds trace arrivals into the FTL as tagged kernel events. Each firing
 * admits every record already due, then schedules one event for the next
 * future arrival — the queue holds at most one pump event at a time.
 * The pump pulls from a TraceStream one record ahead, so replay memory
 * is the stream's (one chunk for FileTraceStream), never the trace's.
 * Lives on Ssd::run()'s stack; run() drains the queue before returning,
 * so pending pump events cannot dangle.
 *
 * With SLO throttling enabled (SloPolicy::Throttle / ThrottleWfq plus a
 * non-empty TenantSloSpec), admission additionally passes through
 * per-tenant token buckets: a record that would exceed its tenant's
 * sustained IOPS/bandwidth budget (beyond the configured burst) is
 * parked in that tenant's FIFO and re-admitted by a
 * TraceAdmitThrottled event at the bucket's refill tick — deferred,
 * never dropped, never reordered within the tenant. The buckets are
 * exact-integer GCRA cells (theoretical-arrival-time with a fractional
 * remainder over the rate), so refill ticks are deterministic at any
 * thread count. Tenants without budgets bypass the gate entirely; with
 * no spec configured the throttle path costs nothing.
 */
struct TracePump
{
    /** One GCRA cell: cost-units/second plus a TAT split into whole
     *  ticks and a fractional numerator over `rate` (exact integers,
     *  no drift). rate 0 disables the cell. */
    struct Bucket
    {
        std::uint64_t rate = 0;   //!< cost units admitted per second
        Tick burstTicks = 0;      //!< conformance tolerance, in ticks
        Tick tat = 0;             //!< theoretical arrival time, whole
        std::uint64_t tatFrac = 0; //!< + tatFrac/rate fractional ticks
    };

    /** Per-tenant admission gate: an IOPS cell (cost 1/request) and a
     *  bandwidth cell (cost = pages * pageKB), plus the FIFO of parked
     *  records awaiting refill. */
    struct TenantGate
    {
        Bucket iops;
        Bucket bw;
        std::deque<std::pair<TraceRecord, Tick>> deferred; //!< + park tick
        EventId release;  //!< pending TraceAdmitThrottled, if any
    };

    Ftl *ftl = nullptr;
    EventQueue *eq = nullptr;
    TraceStream *stream = nullptr;
    TraceRecord pending;    //!< next record to admit (valid iff hasPending)
    bool hasPending = false;
    Tick base = 0;          //!< eq->now() when the replay started
    Tick deadline = kTickMax;
    std::vector<TenantGate> gates;  //!< indexed by tenant; empty: no gate
    SsdMetrics *stats = nullptr;    //!< deferral accounting (throttle only)
    std::uint32_t pageKB = 16;      //!< bandwidth-cell cost per page

    /** Build the per-tenant gates from a parsed SLO spec. */
    void configureThrottle(const TenantSloSpec &spec,
                           std::uint32_t pageSizeKB, SsdMetrics &metrics);

    /** Kernel dispatch target: admit the due records. */
    void fire();

    /** Kernel dispatch target: a tenant's bucket refilled — drain its
     *  deferred FIFO while records conform. */
    void fireThrottled(TenantId tenant);

    /** Are any records still parked in a tenant gate? */
    bool throttledPending() const;

  private:
    /** Route one due record through its tenant gate (or straight to the
     *  FTL when the tenant is ungated). */
    void admit(const TraceRecord &rec);
};

class Ssd
{
  public:
    /**
     * Build a drive: constructs chips, pre-ages them to cfg.initialPec,
     * and prefills the logical space to steady state.
     */
    explicit Ssd(const SsdConfig &cfg);

    /**
     * Replay a trace to completion (all requests serviced). Can be called
     * repeatedly; time continues monotonically.
     */
    void run(const Trace &trace);

    /** Replay and also force-quiesce after `deadline` of simulated time. */
    void run(const Trace &trace, Tick deadline);

    /**
     * Replay from a pull stream — the admission path every overload
     * funnels into. Only one record is resident at a time beyond the
     * stream's own buffering, so multi-billion-request file traces
     * replay in O(chunk) memory.
     */
    void run(TraceStream &stream);
    void run(TraceStream &stream, Tick deadline);

    SsdMetrics &metrics() { return ftlImpl->metrics(); }
    Ftl &ftl() { return *ftlImpl; }
    EventQueue &eventQueue() { return eq; }
    const SsdConfig &config() const { return cfg; }

  private:
    SsdConfig cfg;
    EventQueue eq;
    std::unique_ptr<Ftl> ftlImpl;
};

} // namespace aero

#endif // AERO_SSD_SSD_HH
