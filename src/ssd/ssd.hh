/**
 * @file
 * Top-level simulated SSD: owns the event queue and the FTL, replays
 * traces, and exposes run metrics. This is the library's main entry point
 * for system-level experiments (see examples/quickstart.cpp).
 */

#ifndef AERO_SSD_SSD_HH
#define AERO_SSD_SSD_HH

#include <memory>

#include "ssd/ftl.hh"

namespace aero
{

class Ssd
{
  public:
    /**
     * Build a drive: constructs chips, pre-ages them to cfg.initialPec,
     * and prefills the logical space to steady state.
     */
    explicit Ssd(const SsdConfig &cfg);

    /**
     * Replay a trace to completion (all requests serviced). Can be called
     * repeatedly; time continues monotonically.
     */
    void run(const Trace &trace);

    /** Replay and also force-quiesce after `deadline` of simulated time. */
    void run(const Trace &trace, Tick deadline);

    SsdMetrics &metrics() { return ftlImpl->metrics(); }
    Ftl &ftl() { return *ftlImpl; }
    EventQueue &eventQueue() { return eq; }
    const SsdConfig &config() const { return cfg; }

  private:
    SsdConfig cfg;
    EventQueue eq;
    std::unique_ptr<Ftl> ftlImpl;
};

} // namespace aero

#endif // AERO_SSD_SSD_HH
