/**
 * @file
 * The simulation kernel's event vocabulary: a small closed set of POD
 * event kinds, dispatched by switch in EventQueue::step() instead of
 * through type-erased callbacks. Every hot-path event the simulator
 * schedules — page-op completions, erase-segment completions, suspension
 * quiesce, host-overhead completions, trace admission — is one tagged
 * arena slot: no per-event heap allocation, no std::function indirection.
 * A `Callback` kind keeps the old `schedule(Tick, std::function)` surface
 * alive for tests and examples (that path still heap-allocates its
 * closure, deliberately — it is the compatibility lane, not the hot one).
 *
 * PageOp lives here rather than in ssd/chip_agent.hh because completion
 * events carry one by value; the SSD layer re-exports it via its usual
 * headers.
 */

#ifndef AERO_SIM_EVENT_HH
#define AERO_SIM_EVENT_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace aero
{

class Channel;
class ChipAgent;
class Ftl;
struct GcJob;
struct TracePump;

constexpr std::uint64_t kNoRequest = ~0ULL;

struct PageOp
{
    enum class Kind : std::uint8_t { UserRead, UserWrite, GcRead, GcWrite };

    Kind kind = Kind::UserRead;
    Lpn lpn = kInvalidLpn;
    Ppn ppn = kInvalidPpn;
    std::uint64_t requestId = kNoRequest;
    GcJob *job = nullptr;
    Tick tprog = 0;   //!< program latency (scheme-dependent, writes only)
    TenantId tenant = 0;  //!< WFQ channel arbitration key (host ops)
};

/** The closed set of event kinds the kernel can dispatch. */
enum class EventKind : std::uint8_t
{
    Dead = 0,          //!< free or cancelled arena slot; never dispatched
    Callback,          //!< compat lane: heap-allocated std::function
    Timer,             //!< free function + context pointer
    ChipOpComplete,    //!< a page read/write finished on a chip
    EraseSegmentDone,  //!< an erase segment (or resumed remainder) ended
    SuspendQuiesced,   //!< erase-suspension entry latency elapsed
    HostPageDone,      //!< host-overhead-only page completion
    TraceAdmit,        //!< trace pump: admit the next due request burst
    DieOpComplete,     //!< queued arbitration: on-die phase (sense) ended
    ChannelGrant,      //!< queued arbitration: channel bus released
    TraceAdmitThrottled, //!< trace pump: a tenant's token bucket refilled
};

/**
 * Handle to a scheduled event: arena slot plus generation. The
 * generation is bumped whenever a slot is cancelled or fires, so a stale
 * handle can never cancel the slot's next occupant — cancelling an event
 * that already fired is a harmless no-op returning false. This replaces
 * the per-agent version-counter idiom the std::function kernel needed.
 */
struct EventId
{
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    std::uint32_t slot = kNoSlot;
    std::uint32_t gen = 0;

    explicit operator bool() const { return slot != kNoSlot; }
};

/**
 * One arena slot: heap links, ordering key, tag, and a two-word payload
 * union — exactly one cache line, so heap reordering never touches a
 * second one. Events are stored in EventQueue's chunked arena and linked
 * into an intrusive pairing heap; `sibling` doubles as the freelist
 * link. The one fat payload (the PageOp a ChipOpComplete carries) lives
 * in a parallel per-slot arena in EventQueue, written at schedule time
 * and read back once at dispatch; keeping it out of the union is what
 * holds the node to 64 bytes.
 */
struct Event
{
    struct TimerPayload
    {
        void (*fn)(void *);
        void *ctx;
    };

    struct AgentPayload
    {
        ChipAgent *agent;
    };

    struct HostPagePayload
    {
        Ftl *ftl;
        std::uint64_t requestId;
    };

    struct PumpPayload
    {
        TracePump *pump;
    };

    struct PumpTenantPayload
    {
        TracePump *pump;
        std::uint64_t tenant;  //!< TenantId widened to keep the union POD
    };

    struct ChannelPayload
    {
        Channel *channel;
    };

    union Payload
    {
        Payload() : cb(nullptr) {}

        std::function<void()> *cb;  //!< Callback (compat lane, owned)
        TimerPayload timer;         //!< Timer
        AgentPayload agent;         //!< ChipOpComplete / EraseSegmentDone
                                    //!< / SuspendQuiesced / DieOpComplete
        HostPagePayload hostPage;   //!< HostPageDone
        PumpPayload pump;           //!< TraceAdmit
        PumpTenantPayload pumpTenant; //!< TraceAdmitThrottled
        ChannelPayload channel;     //!< ChannelGrant
    };

    Tick when = 0;
    std::uint64_t seq = 0;       //!< schedule order; breaks same-tick ties
    Event *child = nullptr;      //!< pairing heap: first child
    Event *sibling = nullptr;    //!< pairing heap: next sibling / freelist
    std::uint32_t slot = 0;      //!< arena index (fixed for this slot)
    std::uint32_t gen = 0;       //!< validates EventIds against reuse
    EventKind kind = EventKind::Dead;
    Payload payload;
};

static_assert(sizeof(Event) <= 64,
              "Event outgrew a cache line; move fat payloads to the "
              "EventQueue side arena like PageOp");

} // namespace aero

#endif // AERO_SIM_EVENT_HH
