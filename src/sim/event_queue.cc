#include "sim/event_queue.hh"

#include "common/logging.hh"
#include "ssd/channel.hh"
#include "ssd/chip_agent.hh"
#include "ssd/ftl.hh"
#include "ssd/ssd.hh"

namespace aero
{

EventQueue::~EventQueue()
{
    // Only the compat lane owns heap state: orphaned closures of events
    // still pending at teardown must be freed.
    for (auto &chunk : chunks) {
        for (std::size_t i = 0; i < kChunkSize; ++i) {
            if (chunk[i].kind == EventKind::Callback)
                delete chunk[i].payload.cb;
        }
    }
}

Event *
EventQueue::slotAt(std::uint32_t slot) const
{
    return &chunks[slot / kChunkSize][slot % kChunkSize];
}

PageOp &
EventQueue::opAt(std::uint32_t slot) const
{
    return opChunks[slot / kChunkSize][slot % kChunkSize];
}

Event *
EventQueue::allocSlot()
{
    if (!freeHead) {
        auto chunk = std::make_unique<Event[]>(kChunkSize);
        const auto base = static_cast<std::uint32_t>(slotCount);
        // Thread the fresh chunk onto the freelist in reverse so slots
        // hand out in ascending index order.
        for (std::size_t i = kChunkSize; i-- > 0;) {
            chunk[i].slot = base + static_cast<std::uint32_t>(i);
            chunk[i].sibling = freeHead;
            freeHead = &chunk[i];
        }
        chunks.push_back(std::move(chunk));
        opChunks.push_back(std::make_unique<PageOp[]>(kChunkSize));
        slotCount += kChunkSize;
    }
    Event *ev = freeHead;
    freeHead = ev->sibling;
    ev->child = nullptr;
    ev->sibling = nullptr;
    return ev;
}

void
EventQueue::freeSlot(Event *ev)
{
    ev->kind = EventKind::Dead;
    ev->child = nullptr;
    ev->sibling = freeHead;
    freeHead = ev;
}

Event *
EventQueue::merge(Event *a, Event *b)
{
    if (!a)
        return b;
    if (!b)
        return a;
    // Strict (when, seq) order: seq ties are impossible, so the merge —
    // and therefore the firing order — is a deterministic function of
    // the schedule/cancel call sequence.
    if (b->when < a->when || (b->when == a->when && b->seq < a->seq))
        std::swap(a, b);
    b->sibling = a->child;
    a->child = b;
    return a;
}

Event *
EventQueue::mergePairs(Event *list)
{
    if (!list)
        return nullptr;
    // Standard two-pass pairing: merge adjacent pairs left to right,
    // then fold the pairs right to left.
    Event *paired = nullptr;
    while (list) {
        Event *a = list;
        Event *b = a->sibling;
        list = b ? b->sibling : nullptr;
        a->sibling = nullptr;
        if (b)
            b->sibling = nullptr;
        Event *m = merge(a, b);
        m->sibling = paired;
        paired = m;
    }
    Event *result = paired;
    paired = paired->sibling;
    result->sibling = nullptr;
    while (paired) {
        Event *next = paired->sibling;
        paired->sibling = nullptr;
        result = merge(result, paired);
        paired = next;
    }
    return result;
}

void
EventQueue::scrubRoot()
{
    while (root && root->kind == EventKind::Dead) {
        Event *dead = root;
        root = mergePairs(dead->child);
        freeSlot(dead);
    }
}

Event *
EventQueue::post(Tick when, EventKind kind)
{
    AERO_CHECK(when >= currentTick, "scheduling into the past: ", when,
               " < ", currentTick);
    Event *ev = allocSlot();
    ev->when = when;
    ev->seq = nextSeq++;
    ev->kind = kind;
    root = merge(root, ev);
    ++liveCount;
    return ev;
}

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    Event *ev = post(when, EventKind::Callback);
    ev->payload.cb = new Callback(std::move(cb));
}

EventId
EventQueue::scheduleTimerAt(Tick when, TimerFn fn, void *ctx)
{
    Event *ev = post(when, EventKind::Timer);
    ev->payload.timer = Event::TimerPayload{fn, ctx};
    return EventId{ev->slot, ev->gen};
}

EventId
EventQueue::scheduleChipOpAt(Tick when, ChipAgent &agent, const PageOp &op)
{
    Event *ev = post(when, EventKind::ChipOpComplete);
    ev->payload.agent = Event::AgentPayload{&agent};
    opAt(ev->slot) = op;
    return EventId{ev->slot, ev->gen};
}

EventId
EventQueue::scheduleEraseSegmentAt(Tick when, ChipAgent &agent)
{
    Event *ev = post(when, EventKind::EraseSegmentDone);
    ev->payload.agent = Event::AgentPayload{&agent};
    return EventId{ev->slot, ev->gen};
}

EventId
EventQueue::scheduleSuspendQuiesceAt(Tick when, ChipAgent &agent)
{
    Event *ev = post(when, EventKind::SuspendQuiesced);
    ev->payload.agent = Event::AgentPayload{&agent};
    return EventId{ev->slot, ev->gen};
}

EventId
EventQueue::scheduleHostPageAt(Tick when, Ftl &ftl,
                               std::uint64_t request_id)
{
    Event *ev = post(when, EventKind::HostPageDone);
    ev->payload.hostPage = Event::HostPagePayload{&ftl, request_id};
    return EventId{ev->slot, ev->gen};
}

EventId
EventQueue::scheduleTraceAdmitAt(Tick when, TracePump &pump)
{
    Event *ev = post(when, EventKind::TraceAdmit);
    ev->payload.pump = Event::PumpPayload{&pump};
    return EventId{ev->slot, ev->gen};
}

EventId
EventQueue::scheduleTraceAdmitThrottledAt(Tick when, TracePump &pump,
                                          TenantId tenant)
{
    Event *ev = post(when, EventKind::TraceAdmitThrottled);
    ev->payload.pumpTenant = Event::PumpTenantPayload{&pump, tenant};
    return EventId{ev->slot, ev->gen};
}

EventId
EventQueue::scheduleDieOpAt(Tick when, ChipAgent &agent)
{
    Event *ev = post(when, EventKind::DieOpComplete);
    ev->payload.agent = Event::AgentPayload{&agent};
    return EventId{ev->slot, ev->gen};
}

EventId
EventQueue::scheduleChannelGrantAt(Tick when, Channel &channel)
{
    Event *ev = post(when, EventKind::ChannelGrant);
    ev->payload.channel = Event::ChannelPayload{&channel};
    return EventId{ev->slot, ev->gen};
}

bool
EventQueue::cancel(EventId id)
{
    if (id.slot == EventId::kNoSlot || id.slot >= slotCount)
        return false;
    Event *ev = slotAt(id.slot);
    if (ev->gen != id.gen || ev->kind == EventKind::Dead)
        return false;
    // The compat lane returns no EventId, so a Callback can never be the
    // target of a cancel with a matching generation.
    ev->kind = EventKind::Dead;
    ev->gen += 1;
    --liveCount;
    // Keep the root live so nextEventTick()/run() never see a corpse;
    // dead slots deeper in the heap are recycled when they surface.
    scrubRoot();
    return true;
}

bool
EventQueue::pendingEvent(EventId id) const
{
    if (id.slot == EventId::kNoSlot || id.slot >= slotCount)
        return false;
    const Event *ev = slotAt(id.slot);
    return ev->gen == id.gen && ev->kind != EventKind::Dead;
}

void
EventQueue::dispatch(EventKind kind, const Event::Payload &payload)
{
    switch (kind) {
      case EventKind::Callback: {
        Callback *cb = payload.cb;
        (*cb)();
        delete cb;
        break;
      }
      case EventKind::Timer:
        payload.timer.fn(payload.timer.ctx);
        break;
      case EventKind::ChipOpComplete:
        // Handled inline in step() (the op must be copied out of the
        // side arena before the slot recycles).
        AERO_PANIC("ChipOpComplete reached the generic dispatcher");
      case EventKind::EraseSegmentDone:
        payload.agent.agent->onEraseSegmentDone();
        break;
      case EventKind::SuspendQuiesced:
        payload.agent.agent->onSuspendQuiesced();
        break;
      case EventKind::HostPageDone:
        payload.hostPage.ftl->onHostPageDone(payload.hostPage.requestId);
        break;
      case EventKind::TraceAdmit:
        payload.pump.pump->fire();
        break;
      case EventKind::TraceAdmitThrottled:
        payload.pumpTenant.pump->fireThrottled(
            static_cast<TenantId>(payload.pumpTenant.tenant));
        break;
      case EventKind::DieOpComplete:
        payload.agent.agent->onDieOpComplete();
        break;
      case EventKind::ChannelGrant:
        payload.channel.channel->onGrantDone();
        break;
      case EventKind::Dead:
        AERO_PANIC("dispatching a dead event");
    }
}

void
EventQueue::run(Tick until)
{
    while (root && root->when <= until) {
        if (!step())
            break;
    }
    if (currentTick < until && until != kTickMax)
        currentTick = until;
}

bool
EventQueue::step()
{
    // scrubRoot() in cancel() keeps the root live, so the minimum is
    // either dispatchable or the queue is empty.
    Event *ev = root;
    if (!ev)
        return false;
    root = mergePairs(ev->child);
    scrubRoot();
    --liveCount;
    AERO_CHECK(ev->when >= currentTick, "event queue time went backwards");
    currentTick = ev->when;
    ++processedCount;
    // Copy the tag and payload out and recycle the slot *before*
    // dispatching, so handlers that schedule immediately reuse it: the
    // steady-state arena stays at the peak pending-event count.
    const EventKind kind = ev->kind;
    const Event::Payload payload = ev->payload;
    if (kind == EventKind::ChipOpComplete) {
        const PageOp op = opAt(ev->slot);
        ev->gen += 1;
        freeSlot(ev);
        payload.agent.agent->onChipOpComplete(op);
        return true;
    }
    ev->gen += 1;
    freeSlot(ev);
    dispatch(kind, payload);
    return true;
}

} // namespace aero
