/**
 * @file
 * Discrete-event simulation kernel: a monotonically advancing clock over
 * a time-ordered queue of *tagged* events (see sim/event.hh). Events
 * scheduled for the same tick fire in scheduling order (a stable
 * sequence number breaks ties), which keeps simulations deterministic.
 *
 * Storage is an arena of fixed-size slots recycled through a freelist —
 * the hot path never heap-allocates — and ordering is an intrusive
 * pairing heap keyed on (tick, seq): O(1) push, amortized O(log n) pop,
 * and the same bit-for-bit firing order as the std::function binary heap
 * this kernel replaced. Cancellation is explicit: the typed schedule
 * calls return an EventId that cancel() invalidates lazily (dead slots
 * are skipped and recycled when they surface), replacing the per-agent
 * version-counter idiom.
 *
 * The `schedule(Tick, std::function)` compatibility lane remains for
 * tests and examples; it heap-allocates its closure and cannot be
 * cancelled.
 */

#ifndef AERO_SIM_EVENT_QUEUE_HH
#define AERO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "sim/event.hh"

namespace aero
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;
    using TimerFn = void (*)(void *);

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    Tick now() const { return currentTick; }

    bool empty() const { return liveCount == 0; }
    std::size_t pending() const { return liveCount; }
    std::uint64_t processed() const { return processedCount; }

    /**
     * Tick of the earliest pending event, kTickMax when empty. Lets the
     * trace pump batch same-tick admissions without perturbing event
     * order: if nothing is pending at now(), a pump event scheduled at
     * now() would fire immediately next anyway.
     */
    Tick nextEventTick() const { return root ? root->when : kTickMax; }

    /** Schedule `cb` to run `delay` ticks from now (compat lane). */
    void
    schedule(Tick delay, Callback cb)
    {
        scheduleAt(currentTick + delay, std::move(cb));
    }

    /** Schedule `cb` at an absolute tick (must not be in the past). */
    void scheduleAt(Tick when, Callback cb);

    /** @name Tagged, allocation-free schedule calls (absolute ticks) */
    /** @{ */
    EventId scheduleTimerAt(Tick when, TimerFn fn, void *ctx);
    EventId scheduleChipOpAt(Tick when, ChipAgent &agent, const PageOp &op);
    EventId scheduleEraseSegmentAt(Tick when, ChipAgent &agent);
    EventId scheduleSuspendQuiesceAt(Tick when, ChipAgent &agent);
    EventId scheduleHostPageAt(Tick when, Ftl &ftl,
                               std::uint64_t request_id);
    EventId scheduleTraceAdmitAt(Tick when, TracePump &pump);
    EventId scheduleTraceAdmitThrottledAt(Tick when, TracePump &pump,
                                          TenantId tenant);
    EventId scheduleDieOpAt(Tick when, ChipAgent &agent);
    EventId scheduleChannelGrantAt(Tick when, Channel &channel);
    /** @} */

    /**
     * Cancel a pending event. @return true when the event was pending
     * and is now dead; false for a stale handle (already fired, already
     * cancelled, or never valid). The slot is recycled when it next
     * surfaces at the heap root.
     */
    bool cancel(EventId id);

    /** Is the event this handle names still pending? */
    bool pendingEvent(EventId id) const;

    /** Run until the queue drains or `until` is reached. */
    void run(Tick until = kTickMax);

    /** Process exactly one event; returns false if the queue is empty. */
    bool step();

    /** Arena slots ever constructed (drain/reuse introspection). */
    std::size_t arenaSlots() const { return slotCount; }

  private:
    static constexpr std::size_t kChunkSize = 512;

    static Event *merge(Event *a, Event *b);
    static Event *mergePairs(Event *list);

    Event *slotAt(std::uint32_t slot) const;
    PageOp &opAt(std::uint32_t slot) const;
    Event *allocSlot();
    void freeSlot(Event *ev);
    /** Pop dead slots off the root so `root` is always live or null. */
    void scrubRoot();
    /** Allocate, key, and push one event at `when`. */
    Event *post(Tick when, EventKind kind);
    void dispatch(EventKind kind, const Event::Payload &payload);

    std::vector<std::unique_ptr<Event[]>> chunks;
    /** Side arena for the fat ChipOpComplete payload (see sim/event.hh). */
    std::vector<std::unique_ptr<PageOp[]>> opChunks;
    Event *freeHead = nullptr;
    Event *root = nullptr;
    std::size_t slotCount = 0;
    std::size_t liveCount = 0;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t processedCount = 0;
};

} // namespace aero

#endif // AERO_SIM_EVENT_QUEUE_HH
