/**
 * @file
 * Block-I/O trace representation. The logical address unit is one flash
 * page (16 KiB in the paper's SSD configuration); sub-page requests are
 * rounded up, matching how the FTL services them.
 */

#ifndef AERO_WORKLOAD_TRACE_HH
#define AERO_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace aero
{

enum class IoOp : std::uint8_t { Read, Write };

// TenantId (the multi-tenant QoS accounting identity) lives in
// common/types.hh so the sim kernel can tag PageOps without pulling in
// the workload layer. Tenant 0 is the default (single-tenant) identity;
// TenantMix retags merged records with each source stream's index.

struct TraceRecord
{
    Tick arrival = 0;      //!< absolute arrival time
    IoOp op = IoOp::Read;
    Lpn startPage = 0;     //!< first logical page
    std::uint32_t pages = 1;
    TenantId tenant = 0;   //!< QoS accounting bucket (see ssd/metrics.hh)
};

using Trace = std::vector<TraceRecord>;

/** Aggregate I/O characteristics of a trace (the paper's Table 3). */
struct TraceStats
{
    std::size_t requests = 0;
    double readRatio = 0.0;        //!< fraction of read requests
    double avgReqSizeKB = 0.0;
    double avgInterArrivalMs = 0.0;
    Lpn maxPage = 0;
};

TraceStats computeStats(const Trace &trace, std::uint32_t page_kb);

/** Render stats as a Table 3 style row. */
std::string statsRow(const std::string &name, const TraceStats &s);

/**
 * @name Trace file I/O
 * CSV in an MSRC-like layout: `timestamp_ns,op,start_page,pages` with a
 * one-line header. Lets users replay their own block traces through the
 * simulator and persist generated ones.
 */
/** @{ */
void saveTrace(const Trace &trace, const std::string &path);
Trace loadTrace(const std::string &path);
/** @} */

} // namespace aero

#endif // AERO_WORKLOAD_TRACE_HH
