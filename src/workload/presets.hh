/**
 * @file
 * The eleven evaluation workloads of the paper's Table 3: five Alibaba
 * cloud block traces and six MSR Cambridge enterprise traces. We carry
 * their published aggregate characteristics (read ratio, mean request
 * size, mean inter-arrival time); the synthetic generator reproduces
 * these moments. Following the paper (and much prior work), MSRC
 * inter-arrival times are accelerated 10x at generation time.
 */

#ifndef AERO_WORKLOAD_PRESETS_HH
#define AERO_WORKLOAD_PRESETS_HH

#include <string>
#include <vector>

namespace aero
{

struct WorkloadSpec
{
    std::string name;          //!< paper abbreviation (ali.A, rsrch, ...)
    std::string sourceTrace;   //!< original trace name
    double readRatio = 0.0;    //!< fraction of read requests
    double avgReqSizeKB = 0.0; //!< mean request size
    double interArrivalMs = 0.0; //!< mean inter-arrival as published
    bool msrc = false;         //!< MSRC trace: 10x accelerated

    /** Inter-arrival actually used for generation/evaluation. */
    double
    effectiveInterArrivalMs() const
    {
        return msrc ? interArrivalMs / 10.0 : interArrivalMs;
    }
};

/** All Table 3 workloads, in the paper's order. */
const std::vector<WorkloadSpec> &table3Workloads();

/** Look up a workload by its abbreviation; fatal if unknown. */
const WorkloadSpec &workloadByName(const std::string &name);

} // namespace aero

#endif // AERO_WORKLOAD_PRESETS_HH
