#include "workload/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace aero
{

namespace
{

/** Spread Zipf ranks across the footprint deterministically. */
Lpn
rankToPage(std::uint64_t rank, std::uint64_t footprint)
{
    return (rank * 0x9e3779b97f4a7c15ULL) % footprint;
}

} // namespace

Trace
generateTrace(const SyntheticConfig &cfg)
{
    AERO_CHECK(cfg.footprintPages > 16, "footprint too small");
    AERO_CHECK(cfg.intensityScale > 0.0, "intensity must be positive");
    Rng rng(cfg.seed);
    ZipfGenerator zipf(cfg.footprintPages, cfg.zipfTheta);

    const double inter_ms =
        cfg.spec.effectiveInterArrivalMs() / cfg.intensityScale;
    // Log-normal request size around the spec's mean, floor one page.
    const double mean_pages =
        std::max(1.0, cfg.spec.avgReqSizeKB /
                          static_cast<double>(cfg.pageSizeKB));
    const double size_sigma = 0.6;

    Trace trace;
    trace.reserve(cfg.numRequests);
    double now_ms = 0.0;
    Lpn seq_cursor = rng.below(cfg.footprintPages);
    for (std::uint64_t i = 0; i < cfg.numRequests; ++i) {
        now_ms += rng.expovariate(inter_ms);
        TraceRecord rec;
        rec.arrival = msToTicks(now_ms);
        rec.op = rng.chance(cfg.spec.readRatio) ? IoOp::Read : IoOp::Write;
        const double raw =
            mean_pages * rng.lognormFactor(size_sigma);
        rec.pages = static_cast<std::uint32_t>(
            std::clamp(std::llround(raw), 1LL, 64LL));
        if (rec.op == IoOp::Write && rng.chance(cfg.seqWriteFraction)) {
            // Extend the sequential stream.
            if (seq_cursor + rec.pages >= cfg.footprintPages)
                seq_cursor = 0;
            rec.startPage = seq_cursor;
            seq_cursor += rec.pages;
        } else {
            rec.startPage = rankToPage(zipf.draw(rng), cfg.footprintPages);
            if (rec.startPage + rec.pages > cfg.footprintPages)
                rec.startPage = cfg.footprintPages - rec.pages;
        }
        trace.push_back(rec);
    }
    return trace;
}

} // namespace aero
