/**
 * @file
 * The `aero-trace/1` on-disk binary trace format.
 *
 * Layout (all fields little-endian, written byte-by-byte so the format
 * is identical on any host):
 *
 *   header (32 bytes)
 *     0  magic     "AEROTRC1" (8 bytes)
 *     8  version   u32 = 1
 *     12 record_bytes u32 = 24
 *     16 flags     u32 (bit 0: records carry tenant tags)
 *     20 page_kb   u32 (logical page size the page numbers refer to)
 *     24 reserved  u64 = 0
 *   records (24 bytes each, to end of file)
 *     0  arrival   u64 ns (non-decreasing across the file)
 *     8  start_page u64
 *     16 pages     u32 (> 0)
 *     20 op        u8 (0 = read, 1 = write)
 *     21 reserved  u8 = 0
 *     22 tenant    u16
 *
 * The header carries no record count, so a writer can append records
 * and crash at any point; readers consume to end-of-file and report a
 * trailing partial record as a torn tail. Multi-billion-request traces
 * are the point of the format: the streaming reader (trace_io/stream.hh)
 * replays them in O(chunk) memory.
 */

#ifndef AERO_WORKLOAD_TRACE_IO_FORMAT_HH
#define AERO_WORKLOAD_TRACE_IO_FORMAT_HH

#include <array>
#include <cstdint>
#include <string>

#include "workload/trace.hh"

namespace aero
{

namespace trace_io
{

constexpr char kMagic[8] = {'A', 'E', 'R', 'O', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kRecordBytes = 24;
constexpr std::uint32_t kFlagTenantTags = 1u << 0;

/** Decoded `aero-trace/1` header. */
struct TraceFileHeader
{
    std::uint32_t flags = 0;
    std::uint32_t pageKB = 16;

    bool hasTenantTags() const { return (flags & kFlagTenantTags) != 0; }
};

/**
 * A reader/importer failure: what went wrong and where. `byteOffset` is
 * the file position of the offending header field or record (for CSV
 * input, `line` is the 1-based source line instead) — mirroring the
 * JSON parser's positioned ParseError.
 */
struct TraceError
{
    std::string message;
    std::uint64_t byteOffset = 0;
    std::uint64_t record = 0;  //!< 0 for header errors, else 1-based
    std::size_t line = 0;      //!< CSV importer errors only (1-based)

    /** "byte B (record R): message" / "line L: message" for logs. */
    std::string toString() const;
};

/** Encode one record into its 24-byte on-disk form. */
void encodeRecord(const TraceRecord &rec,
                  std::array<std::uint8_t, kRecordBytes> &out);

/**
 * Decode one on-disk record. Returns false (with a message in @p err)
 * when the record is structurally invalid: zero page count, unknown op,
 * nonzero reserved byte, or a page span overflowing 64 bits. Arrival
 * monotonicity is the stream's job (it spans records).
 */
bool decodeRecord(const std::uint8_t *bytes, TraceRecord *out,
                  std::string *err);

/** Encode/decode the 32-byte header (decode validates every field). */
void encodeHeader(const TraceFileHeader &header,
                  std::array<std::uint8_t, kHeaderBytes> &out);
bool decodeHeader(const std::uint8_t *bytes, TraceFileHeader *out,
                  std::string *err);

/**
 * Explicit page rounding for byte-addressed requests (the CSV
 * importer's contract): the request covers every page the byte range
 * [offset, offset + size) touches, so a 2-byte request straddling a
 * page boundary occupies two pages. @return false when @p sizeBytes is
 * zero or the byte range overflows 64 bits.
 */
struct PageSpan
{
    Lpn startPage = 0;
    std::uint64_t pages = 0;
};

bool pageSpanForBytes(std::uint64_t offsetBytes, std::uint64_t sizeBytes,
                      std::uint32_t pageBytes, PageSpan *out);

} // namespace trace_io

} // namespace aero

#endif // AERO_WORKLOAD_TRACE_IO_FORMAT_HH
