#include "workload/trace_io/stream.hh"

#include <limits>

#include "common/logging.hh"

namespace aero
{

// ---------------------------------------------------------------------------
// FileTraceStream
// ---------------------------------------------------------------------------

FileTraceStream::FileTraceStream(const std::string &path_, OnError mode_)
    : path(path_), mode(mode_)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file) {
        fail("cannot open trace file");
        return;
    }
    std::uint8_t raw[trace_io::kHeaderBytes];
    const std::size_t got = std::fread(raw, 1, sizeof(raw), file);
    if (got < sizeof(raw)) {
        err.byteOffset = got;
        fail("truncated header (" + std::to_string(got) + " of " +
             std::to_string(sizeof(raw)) + " bytes)");
        return;
    }
    std::string msg;
    if (!trace_io::decodeHeader(raw, &head, &msg)) {
        fail(std::move(msg));
        return;
    }
    buffer.resize(kChunkRecords * trace_io::kRecordBytes);
}

FileTraceStream::~FileTraceStream()
{
    if (file)
        std::fclose(file);
}

bool
FileTraceStream::fail(std::string message)
{
    err.message = std::move(message);
    failed = true;
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
    if (mode == OnError::Fatal)
        AERO_FATAL("trace file ", path, ": ", err.toString());
    return false;
}

bool
FileTraceStream::refill()
{
    if (tornTail != 0) {
        // Every whole record before the tear has been served; now the
        // partial trailing record (a mid-append crash) is the error.
        err.byteOffset =
            trace_io::kHeaderBytes + recordCount * trace_io::kRecordBytes;
        err.record = recordCount + 1;
        return fail("torn final record (" + std::to_string(tornTail) +
                    " trailing bytes)");
    }
    if (!file)
        return false;
    const std::size_t got =
        std::fread(buffer.data(), 1, buffer.size(), file);
    const std::uint64_t chunk_base =
        trace_io::kHeaderBytes + recordCount * trace_io::kRecordBytes;
    if (got == 0) {
        if (std::ferror(file)) {
            err.byteOffset = chunk_base;
            return fail("read error");
        }
        std::fclose(file);
        file = nullptr;
        return false;
    }
    const std::size_t tail = got % trace_io::kRecordBytes;
    if (tail != 0) {
        if (!std::feof(file)) {
            err.byteOffset = chunk_base;
            return fail("short read mid-file");
        }
        tornTail = tail;
        std::fclose(file);
        file = nullptr;
        if (got < trace_io::kRecordBytes)
            return refill();  // no whole record left: report the tear now
    }
    bufRecords = got / trace_io::kRecordBytes;
    bufCursor = 0;
    if (bufRecords > bufferHighWater)
        bufferHighWater = bufRecords;
    return true;
}

bool
FileTraceStream::next(TraceRecord &out)
{
    if (failed)
        return false;
    if (bufCursor >= bufRecords && !refill())
        return false;
    const std::uint8_t *bytes =
        buffer.data() + bufCursor * trace_io::kRecordBytes;
    std::string msg;
    TraceRecord rec;
    const std::uint64_t offset =
        trace_io::kHeaderBytes + recordCount * trace_io::kRecordBytes;
    if (!trace_io::decodeRecord(bytes, &rec, &msg)) {
        err.byteOffset = offset;
        err.record = recordCount + 1;
        return fail(std::move(msg));
    }
    if (recordCount > 0 && rec.arrival < lastArrival) {
        err.byteOffset = offset;
        err.record = recordCount + 1;
        return fail("out-of-order arrival (" +
                    std::to_string(rec.arrival) + " after " +
                    std::to_string(lastArrival) + ")");
    }
    lastArrival = rec.arrival;
    bufCursor += 1;
    recordCount += 1;
    out = rec;
    return true;
}

// ---------------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------------

TraceWriter::TraceWriter(const std::string &path_, std::uint32_t page_kb,
                         bool tenant_tags)
    : path(path_)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        AERO_FATAL("cannot open trace file for writing: ", path);
    trace_io::TraceFileHeader header;
    header.flags = tenant_tags ? trace_io::kFlagTenantTags : 0;
    header.pageKB = page_kb;
    AERO_CHECK(page_kb > 0, "trace page size must be nonzero");
    std::array<std::uint8_t, trace_io::kHeaderBytes> raw;
    trace_io::encodeHeader(header, raw);
    if (std::fwrite(raw.data(), 1, raw.size(), file) != raw.size())
        AERO_FATAL("short write to trace file: ", path);
}

TraceWriter::~TraceWriter()
{
    if (file)
        close();
}

void
TraceWriter::append(const TraceRecord &rec)
{
    AERO_CHECK(file, "append to a closed TraceWriter: ", path);
    if (rec.pages == 0)
        AERO_FATAL("trace record ", count + 1, " has zero page count");
    if (rec.startPage > std::numeric_limits<Lpn>::max() - rec.pages)
        AERO_FATAL("trace record ", count + 1,
                   " page span overflows 64 bits");
    if (count > 0 && rec.arrival < lastArrival)
        AERO_FATAL("trace record ", count + 1, " arrives out of order (",
                   rec.arrival, " after ", lastArrival, ")");
    lastArrival = rec.arrival;
    std::array<std::uint8_t, trace_io::kRecordBytes> raw;
    trace_io::encodeRecord(rec, raw);
    if (std::fwrite(raw.data(), 1, raw.size(), file) != raw.size())
        AERO_FATAL("short write to trace file: ", path);
    count += 1;
}

void
TraceWriter::close()
{
    AERO_CHECK(file, "double close of TraceWriter: ", path);
    const bool flush_ok = std::fflush(file) == 0;
    const bool close_ok = std::fclose(file) == 0;
    file = nullptr;
    if (!flush_ok || !close_ok)
        AERO_FATAL("short write to trace file: ", path);
}

void
writeTraceFile(const Trace &trace, const std::string &path,
               std::uint32_t page_kb, bool tenant_tags)
{
    TraceWriter writer(path, page_kb, tenant_tags);
    for (const auto &rec : trace)
        writer.append(rec);
    writer.close();
}

// ---------------------------------------------------------------------------
// Streaming stats
// ---------------------------------------------------------------------------

namespace
{

/** Running aggregates for one stats bucket (whole stream or tenant). */
struct StatsAcc
{
    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    double sizeSum = 0.0;
    Tick first = 0;
    Tick last = 0;
    Lpn maxPage = 0;

    void
    add(const TraceRecord &r, std::uint32_t page_kb)
    {
        if (requests == 0)
            first = r.arrival;
        last = r.arrival;
        requests += 1;
        if (r.op == IoOp::Read)
            reads += 1;
        sizeSum += static_cast<double>(r.pages) * page_kb;
        const Lpn last_page = r.startPage + r.pages - 1;
        if (last_page > maxPage)
            maxPage = last_page;
    }

    TraceStats
    finalize() const
    {
        // Same arithmetic (and accumulation order) as computeStats(),
        // so the streaming pass is bit-identical to the vector pass.
        TraceStats s;
        s.requests = requests;
        if (requests == 0)
            return s;
        s.readRatio = static_cast<double>(reads) /
                      static_cast<double>(requests);
        s.avgReqSizeKB = sizeSum / static_cast<double>(requests);
        s.maxPage = maxPage;
        if (requests > 1) {
            const double span = static_cast<double>(last - first);
            s.avgInterArrivalMs = span / static_cast<double>(kMs) /
                                  static_cast<double>(requests - 1);
        }
        return s;
    }
};

} // namespace

StreamTraceStats
computeStreamStats(TraceStream &stream, std::uint32_t page_kb,
                   bool per_tenant)
{
    StatsAcc total;
    std::vector<StatsAcc> tenants;
    TraceRecord rec;
    while (stream.next(rec)) {
        total.add(rec, page_kb);
        if (per_tenant) {
            if (tenants.size() <= rec.tenant)
                tenants.resize(static_cast<std::size_t>(rec.tenant) + 1);
            tenants[rec.tenant].add(rec, page_kb);
        }
    }
    StreamTraceStats out;
    out.total = total.finalize();
    out.perTenant.reserve(tenants.size());
    for (const auto &acc : tenants)
        out.perTenant.push_back(acc.finalize());
    return out;
}

} // namespace aero
