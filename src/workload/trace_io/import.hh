/**
 * @file
 * MSR-Cambridge-style CSV trace importer.
 *
 * Input lines look like
 *
 *   128166372003061629,src1,0,Read,8192,4096,321
 *
 * i.e. `timestamp,hostname,diskno,type,offset,size[,response,...]` with
 * the timestamp in 100 ns Windows filetime ticks, the offset/size in
 * bytes, and the type spelled Read/Write (case-insensitive). The
 * importer converts each line to an `aero-trace/1` record: timestamps
 * are rebased to zero and scaled to nanoseconds, byte ranges are
 * rounded to the pages they touch (trace_io::pageSpanForBytes — a
 * 2-byte request straddling a page boundary becomes a 2-page record),
 * and everything streams line-by-line so arbitrarily large CSVs import
 * in bounded memory.
 *
 * Parse errors are strict and positioned by 1-based line number,
 * mirroring the JSON parser's error style: the fatal wrapper dies with
 * `line N: message`, the stream-level entry point returns false with
 * the same TraceError for callers (like the fuzz battery) that want to
 * keep running.
 */

#ifndef AERO_WORKLOAD_TRACE_IO_IMPORT_HH
#define AERO_WORKLOAD_TRACE_IO_IMPORT_HH

#include <functional>
#include <istream>

#include "workload/trace_io/format.hh"

namespace aero
{

/** Knobs for one MSRC CSV import. */
struct MsrcImportOptions
{
    std::uint32_t pageKB = 16;      //!< logical page size to round to
    std::uint64_t timestampUnitNs = 100; //!< Windows filetime ticks
    bool rebaseToZero = true;       //!< first arrival becomes t=0
    TenantId tenant = 0;            //!< tag every imported record
};

/** What one import produced (reported by the trace_import CLI). */
struct ImportSummary
{
    std::uint64_t lines = 0;    //!< data lines consumed
    std::uint64_t records = 0;  //!< records emitted (== lines)
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    Tick firstArrival = 0;      //!< post-rebase, post-scale
    Tick lastArrival = 0;
    Lpn maxPage = 0;
};

/**
 * Stream MSRC CSV from @p in, invoking @p sink once per record in file
 * order. Returns false with a line-positioned @p err on the first
 * malformed line (wrong field count, non-numeric field, overflow,
 * zero-byte request, unknown op, out-of-order timestamp). CRLF line
 * endings and trailing extra columns (response time etc.) are accepted;
 * blank lines are skipped.
 */
bool importMsrcCsv(std::istream &in, const MsrcImportOptions &opts,
                   const std::function<void(const TraceRecord &)> &sink,
                   ImportSummary *summary, trace_io::TraceError *err);

/**
 * Fatal-on-error convenience: import @p csvPath and write the records
 * as an `aero-trace/1` file at @p outPath (tenant-tagged iff
 * opts.tenant != 0). Dies with `<csvPath>: line N: message` on any
 * malformed input.
 */
ImportSummary importMsrcCsvFile(const std::string &csvPath,
                                const std::string &outPath,
                                const MsrcImportOptions &opts);

} // namespace aero

#endif // AERO_WORKLOAD_TRACE_IO_IMPORT_HH
