/**
 * @file
 * Streaming trace replay: the pull interface the simulator admits
 * requests through, with a chunk-buffered `aero-trace/1` file reader so
 * multi-billion-request traces replay in O(chunk) memory, a vector
 * adapter for the in-memory Trace path, and a streaming writer.
 *
 * `Ssd::run` consumes a TraceStream (ssd/ssd.hh); the `const Trace&`
 * overload is now a VectorTraceStream adapter over this interface.
 */

#ifndef AERO_WORKLOAD_TRACE_IO_STREAM_HH
#define AERO_WORKLOAD_TRACE_IO_STREAM_HH

#include <cstdio>
#include <vector>

#include "workload/trace_io/format.hh"

namespace aero
{

/**
 * Pull interface over an ordered request stream. next() yields records
 * with non-decreasing arrival times; implementations own whatever
 * buffering they need but must never require the full trace resident.
 */
class TraceStream
{
  public:
    virtual ~TraceStream() = default;

    /** Yield the next record; false at end of stream. */
    virtual bool next(TraceRecord &out) = 0;
};

/** In-memory adapter: replays a Trace vector (borrowed or owned). */
class VectorTraceStream : public TraceStream
{
  public:
    /** Borrow @p trace (must outlive the stream). */
    explicit VectorTraceStream(const Trace &trace) : records(&trace) {}

    /** Take ownership of @p trace. */
    explicit VectorTraceStream(Trace &&trace)
        : owned(std::move(trace)), records(&owned)
    {
    }

    bool
    next(TraceRecord &out) override
    {
        if (cursor >= records->size())
            return false;
        out = (*records)[cursor++];
        return true;
    }

  private:
    Trace owned;
    const Trace *records;
    std::size_t cursor = 0;
};

/**
 * Chunk-buffered reader for `aero-trace/1` files. Memory use is one
 * kChunkRecords-record buffer regardless of trace length; the
 * high-water mark is observable (maxBufferedRecords) so tests can
 * assert the bounded-memory contract instead of trusting it.
 *
 * Error policy mirrors Json::parse's split surface: OnError::Fatal
 * (the default, for CLIs and the simulator) dies with a positioned
 * message; OnError::Flag makes next() return false with the TraceError
 * retrievable via error() — the lane the fuzz battery drives.
 */
class FileTraceStream : public TraceStream
{
  public:
    enum class OnError { Fatal, Flag };

    static constexpr std::size_t kChunkRecords = 4096;

    explicit FileTraceStream(const std::string &path,
                             OnError mode = OnError::Fatal);
    ~FileTraceStream() override;

    FileTraceStream(const FileTraceStream &) = delete;
    FileTraceStream &operator=(const FileTraceStream &) = delete;

    bool next(TraceRecord &out) override;

    /** Header fields (valid once ok()). */
    const trace_io::TraceFileHeader &header() const { return head; }
    std::uint32_t pageKB() const { return head.pageKB; }
    bool hasTenantTags() const { return head.hasTenantTags(); }

    /** False after any open/decode failure (OnError::Flag only). */
    bool ok() const { return !failed; }
    const trace_io::TraceError &error() const { return err; }

    std::uint64_t recordsRead() const { return recordCount; }

    /** Most records ever resident in the chunk buffer. */
    std::size_t maxBufferedRecords() const { return bufferHighWater; }

  private:
    bool refill();
    bool fail(std::string message);

    std::string path;
    OnError mode;
    std::FILE *file = nullptr;
    trace_io::TraceFileHeader head;
    trace_io::TraceError err;
    bool failed = false;

    std::vector<std::uint8_t> buffer;  //!< raw bytes of the current chunk
    std::size_t bufRecords = 0;        //!< decoded records in the chunk
    std::size_t bufCursor = 0;         //!< next record within the chunk
    std::size_t bufferHighWater = 0;
    std::size_t tornTail = 0;          //!< trailing bytes of a torn record
    std::uint64_t recordCount = 0;     //!< records yielded so far
    Tick lastArrival = 0;
};

/**
 * Streaming `aero-trace/1` writer: header up front, records appended
 * one fwrite at a time (the format is append-friendly — no count to
 * back-patch). Arrival monotonicity and record validity are enforced at
 * append time, so a generator bug dies at the write, not at replay.
 * close() flushes and is fatal on a short write; the destructor closes
 * too but swallows nothing — it panics on failure, so call close() for
 * a clean error path.
 */
class TraceWriter
{
  public:
    TraceWriter(const std::string &path, std::uint32_t page_kb,
                bool tenant_tags);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &rec);
    std::uint64_t recordsWritten() const { return count; }
    void close();

  private:
    std::string path;
    std::FILE *file = nullptr;
    std::uint64_t count = 0;
    Tick lastArrival = 0;
};

/** Write a whole in-memory Trace as one `aero-trace/1` file. */
void writeTraceFile(const Trace &trace, const std::string &path,
                    std::uint32_t page_kb, bool tenant_tags = false);

/**
 * One bounded-memory pass over any stream: the Table-3 aggregates for
 * the whole stream plus a per-tenant breakdown (index = TenantId;
 * empty when @p per_tenant is false). Matches computeStats() exactly on
 * the same records.
 */
struct StreamTraceStats
{
    TraceStats total;
    std::vector<TraceStats> perTenant;
};

StreamTraceStats computeStreamStats(TraceStream &stream,
                                    std::uint32_t page_kb,
                                    bool per_tenant = true);

} // namespace aero

#endif // AERO_WORKLOAD_TRACE_IO_STREAM_HH
