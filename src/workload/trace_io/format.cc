#include "workload/trace_io/format.hh"

#include <cstring>
#include <limits>
#include <sstream>

namespace aero
{

namespace trace_io
{

namespace
{

void
putU16(std::uint8_t *out, std::uint16_t v)
{
    out[0] = static_cast<std::uint8_t>(v);
    out[1] = static_cast<std::uint8_t>(v >> 8);
}

void
putU32(std::uint8_t *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::uint8_t *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t
getU16(const std::uint8_t *in)
{
    return static_cast<std::uint16_t>(in[0] |
                                      (static_cast<std::uint16_t>(in[1])
                                       << 8));
}

std::uint32_t
getU32(const std::uint8_t *in)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *in)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

} // namespace

std::string
TraceError::toString() const
{
    std::ostringstream os;
    if (line > 0)
        os << "line " << line << ": ";
    else if (record > 0)
        os << "byte " << byteOffset << " (record " << record << "): ";
    else
        os << "byte " << byteOffset << ": ";
    os << message;
    return os.str();
}

void
encodeRecord(const TraceRecord &rec,
             std::array<std::uint8_t, kRecordBytes> &out)
{
    putU64(out.data(), rec.arrival);
    putU64(out.data() + 8, rec.startPage);
    putU32(out.data() + 16, rec.pages);
    out[20] = rec.op == IoOp::Read ? 0 : 1;
    out[21] = 0;
    putU16(out.data() + 22, rec.tenant);
}

bool
decodeRecord(const std::uint8_t *bytes, TraceRecord *out, std::string *err)
{
    TraceRecord rec;
    rec.arrival = getU64(bytes);
    rec.startPage = getU64(bytes + 8);
    rec.pages = getU32(bytes + 16);
    const std::uint8_t op = bytes[20];
    const std::uint8_t reserved = bytes[21];
    rec.tenant = getU16(bytes + 22);
    if (op > 1) {
        if (err)
            *err = "unknown op code " + std::to_string(op);
        return false;
    }
    rec.op = op == 0 ? IoOp::Read : IoOp::Write;
    if (reserved != 0) {
        if (err)
            *err = "nonzero reserved byte";
        return false;
    }
    if (rec.pages == 0) {
        if (err)
            *err = "zero page count";
        return false;
    }
    if (rec.startPage > std::numeric_limits<Lpn>::max() - rec.pages) {
        if (err)
            *err = "page span overflows 64 bits";
        return false;
    }
    *out = rec;
    return true;
}

void
encodeHeader(const TraceFileHeader &header,
             std::array<std::uint8_t, kHeaderBytes> &out)
{
    out.fill(0);
    std::memcpy(out.data(), kMagic, sizeof(kMagic));
    putU32(out.data() + 8, kVersion);
    putU32(out.data() + 12, static_cast<std::uint32_t>(kRecordBytes));
    putU32(out.data() + 16, header.flags);
    putU32(out.data() + 20, header.pageKB);
    putU64(out.data() + 24, 0);
}

bool
decodeHeader(const std::uint8_t *bytes, TraceFileHeader *out,
             std::string *err)
{
    if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
        if (err)
            *err = "bad magic (not an aero-trace/1 file)";
        return false;
    }
    const std::uint32_t version = getU32(bytes + 8);
    if (version != kVersion) {
        if (err)
            *err = "unsupported version " + std::to_string(version);
        return false;
    }
    const std::uint32_t record_bytes = getU32(bytes + 12);
    if (record_bytes != kRecordBytes) {
        if (err) {
            *err = "unexpected record size " +
                   std::to_string(record_bytes) + " (want " +
                   std::to_string(kRecordBytes) + ")";
        }
        return false;
    }
    TraceFileHeader header;
    header.flags = getU32(bytes + 16);
    if ((header.flags & ~kFlagTenantTags) != 0) {
        if (err)
            *err = "unknown flag bits set";
        return false;
    }
    header.pageKB = getU32(bytes + 20);
    if (header.pageKB == 0) {
        if (err)
            *err = "zero page size";
        return false;
    }
    if (getU64(bytes + 24) != 0) {
        if (err)
            *err = "nonzero reserved field";
        return false;
    }
    *out = header;
    return true;
}

bool
pageSpanForBytes(std::uint64_t offsetBytes, std::uint64_t sizeBytes,
                 std::uint32_t pageBytes, PageSpan *out)
{
    if (sizeBytes == 0 || pageBytes == 0)
        return false;
    if (offsetBytes > std::numeric_limits<std::uint64_t>::max() -
                          (sizeBytes - 1))
        return false;
    const std::uint64_t last = offsetBytes + (sizeBytes - 1);
    out->startPage = offsetBytes / pageBytes;
    out->pages = last / pageBytes - out->startPage + 1;
    return true;
}

} // namespace trace_io

} // namespace aero
