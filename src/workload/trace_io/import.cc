#include "workload/trace_io/import.hh"

#include <fstream>
#include <limits>

#include "common/logging.hh"
#include "workload/trace_io/stream.hh"

namespace aero
{

namespace
{

/** Strict base-10 u64 parse with overflow detection. */
bool
parseU64(const std::string &field, std::uint64_t *out)
{
    if (field.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : field) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    *out = v;
    return true;
}

bool
equalsIgnoreCase(const std::string &s, const char *word)
{
    std::size_t i = 0;
    for (; word[i] != '\0'; ++i) {
        if (i >= s.size())
            return false;
        char c = s[i];
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
        if (c != word[i])
            return false;
    }
    return i == s.size();
}

/** Split on commas; no quoting in MSRC traces, so this is exact. */
void
splitFields(const std::string &line, std::vector<std::string> *out)
{
    out->clear();
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            out->push_back(line.substr(start));
            return;
        }
        out->push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

bool
failLine(trace_io::TraceError *err, std::size_t lineno, std::string message)
{
    if (err) {
        err->message = std::move(message);
        err->line = lineno;
        err->byteOffset = 0;
        err->record = 0;
    }
    return false;
}

} // namespace

bool
importMsrcCsv(std::istream &in, const MsrcImportOptions &opts,
              const std::function<void(const TraceRecord &)> &sink,
              ImportSummary *summary, trace_io::TraceError *err)
{
    AERO_CHECK(opts.pageKB > 0, "import page size must be nonzero");
    AERO_CHECK(opts.timestampUnitNs > 0,
               "import timestamp unit must be nonzero");
    const std::uint32_t page_bytes =
        opts.pageKB * static_cast<std::uint32_t>(kKiB);

    ImportSummary sum;
    std::string line;
    std::vector<std::string> fields;
    std::size_t lineno = 0;
    std::uint64_t base_ts = 0;
    bool have_base = false;
    std::uint64_t last_ts = 0;

    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;

        splitFields(line, &fields);
        if (fields.size() < 6) {
            return failLine(err, lineno,
                            "expected at least 6 comma-separated fields "
                            "(timestamp,hostname,diskno,type,offset,size), "
                            "got " + std::to_string(fields.size()));
        }

        std::uint64_t ts = 0;
        if (!parseU64(fields[0], &ts))
            return failLine(err, lineno,
                            "bad timestamp '" + fields[0] + "'");
        std::uint64_t diskno = 0;
        if (!parseU64(fields[2], &diskno))
            return failLine(err, lineno,
                            "bad disk number '" + fields[2] + "'");

        IoOp op;
        if (equalsIgnoreCase(fields[3], "read"))
            op = IoOp::Read;
        else if (equalsIgnoreCase(fields[3], "write"))
            op = IoOp::Write;
        else
            return failLine(err, lineno,
                            "unknown request type '" + fields[3] +
                            "' (want Read or Write)");

        std::uint64_t offset = 0;
        if (!parseU64(fields[4], &offset))
            return failLine(err, lineno,
                            "bad offset '" + fields[4] + "'");
        std::uint64_t size = 0;
        if (!parseU64(fields[5], &size))
            return failLine(err, lineno, "bad size '" + fields[5] + "'");

        if (!have_base) {
            base_ts = opts.rebaseToZero ? ts : 0;
            have_base = true;
        } else if (ts < last_ts) {
            return failLine(err, lineno,
                            "out-of-order timestamp (" +
                            std::to_string(ts) + " after " +
                            std::to_string(last_ts) + ")");
        }
        last_ts = ts;

        const std::uint64_t rel = ts - base_ts;
        if (rel > std::numeric_limits<Tick>::max() / opts.timestampUnitNs)
            return failLine(err, lineno,
                            "timestamp overflows nanoseconds");

        trace_io::PageSpan span;
        if (!trace_io::pageSpanForBytes(offset, size, page_bytes, &span)) {
            return failLine(err, lineno,
                            size == 0 ? "zero-byte request"
                                      : "byte range overflows 64 bits");
        }
        if (span.pages >
            std::numeric_limits<std::uint32_t>::max()) {
            return failLine(err, lineno,
                            "request spans too many pages (" +
                            std::to_string(span.pages) + ")");
        }

        TraceRecord rec;
        rec.arrival = rel * opts.timestampUnitNs;
        rec.op = op;
        rec.startPage = span.startPage;
        rec.pages = static_cast<std::uint32_t>(span.pages);
        rec.tenant = opts.tenant;

        if (sum.records == 0)
            sum.firstArrival = rec.arrival;
        sum.lastArrival = rec.arrival;
        sum.lines += 1;
        sum.records += 1;
        if (op == IoOp::Read)
            sum.reads += 1;
        else
            sum.writes += 1;
        const Lpn last_page = rec.startPage + rec.pages - 1;
        if (last_page > sum.maxPage)
            sum.maxPage = last_page;

        sink(rec);
    }

    if (summary)
        *summary = sum;
    return true;
}

ImportSummary
importMsrcCsvFile(const std::string &csvPath, const std::string &outPath,
                  const MsrcImportOptions &opts)
{
    std::ifstream in(csvPath);
    if (!in)
        AERO_FATAL("cannot open trace file: ", csvPath);
    TraceWriter writer(outPath, opts.pageKB, opts.tenant != 0);
    ImportSummary summary;
    trace_io::TraceError err;
    const bool ok = importMsrcCsv(
        in, opts, [&](const TraceRecord &rec) { writer.append(rec); },
        &summary, &err);
    if (!ok)
        AERO_FATAL("trace import ", csvPath, ": ", err.toString());
    writer.close();
    return summary;
}

} // namespace aero
