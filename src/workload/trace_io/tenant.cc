#include "workload/trace_io/tenant.hh"

#include <limits>

#include "common/logging.hh"

namespace aero
{

namespace
{

std::uint64_t
parseCount(const std::string &entry, const std::string &field,
           const char *what)
{
    if (field.empty())
        AERO_FATAL("bad tenant mix entry '", entry, "': empty ", what);
    std::uint64_t v = 0;
    for (char c : field) {
        if (c < '0' || c > '9')
            AERO_FATAL("bad tenant mix entry '", entry, "': ", what,
                       " '", field, "' is not a number");
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            AERO_FATAL("bad tenant mix entry '", entry, "': ", what,
                       " '", field, "' overflows");
        v = v * 10 + digit;
    }
    return v;
}

} // namespace

std::vector<TenantSource>
parseTenantMixSpec(const std::string &spec)
{
    std::vector<TenantSource> sources;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(start, comma - start);
        start = comma + 1;
        if (entry.empty())
            AERO_FATAL("bad tenant mix spec '", spec, "': empty entry");

        TenantSource src;
        src.label = entry;
        if (entry[0] == '@') {
            src.tracePath = entry.substr(1);
            if (src.tracePath.empty())
                AERO_FATAL("bad tenant mix entry '", entry,
                           "': empty trace path");
        } else {
            const std::size_t c1 = entry.find(':');
            if (c1 == std::string::npos) {
                src.preset = entry;
            } else {
                src.preset = entry.substr(0, c1);
                const std::size_t c2 = entry.find(':', c1 + 1);
                const std::string reqs =
                    entry.substr(c1 + 1, c2 == std::string::npos
                                             ? std::string::npos
                                             : c2 - c1 - 1);
                src.requests = parseCount(entry, reqs, "request count");
                if (src.requests == 0)
                    AERO_FATAL("bad tenant mix entry '", entry,
                               "': zero request count");
                if (c2 != std::string::npos) {
                    if (entry.find(':', c2 + 1) != std::string::npos)
                        AERO_FATAL("bad tenant mix entry '", entry,
                                   "': too many fields");
                    src.seed = parseCount(entry, entry.substr(c2 + 1),
                                          "seed");
                    src.hasSeed = true;
                }
            }
            if (src.preset.empty())
                AERO_FATAL("bad tenant mix entry '", entry,
                           "': empty preset name");
        }
        sources.push_back(std::move(src));
    }
    if (sources.empty())
        AERO_FATAL("empty tenant mix spec");
    if (sources.size() >
        static_cast<std::size_t>(std::numeric_limits<TenantId>::max()) + 1)
        AERO_FATAL("tenant mix has ", sources.size(),
                   " tenants (max ",
                   std::numeric_limits<TenantId>::max() + 1, ")");
    return sources;
}

std::unique_ptr<TraceStream>
openTenantSource(const TenantSource &src, const SyntheticConfig &base)
{
    if (!src.tracePath.empty()) {
        auto stream = std::make_unique<FileTraceStream>(src.tracePath);
        if (stream->pageKB() != base.pageSizeKB)
            AERO_FATAL("tenant trace ", src.tracePath, " uses ",
                       stream->pageKB(), " KB pages but the mix runs at ",
                       base.pageSizeKB, " KB");
        return stream;
    }
    SyntheticConfig cfg = base;
    cfg.spec = workloadByName(src.preset);
    if (src.requests != 0)
        cfg.numRequests = src.requests;
    if (src.hasSeed)
        cfg.seed = src.seed;
    return std::make_unique<VectorTraceStream>(generateTrace(cfg));
}

TenantMix::TenantMix(std::vector<std::unique_ptr<TraceStream>> streams)
{
    AERO_CHECK(!streams.empty(), "tenant mix needs at least one stream");
    AERO_CHECK(streams.size() <=
                   static_cast<std::size_t>(
                       std::numeric_limits<TenantId>::max()) + 1,
               "tenant mix has too many streams");
    lanes.reserve(streams.size());
    for (auto &stream : streams) {
        Lane lane;
        lane.stream = std::move(stream);
        lane.alive = lane.stream->next(lane.head);
        lanes.push_back(std::move(lane));
    }
}

bool
TenantMix::next(TraceRecord &out)
{
    std::size_t best = lanes.size();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        if (!lanes[i].alive)
            continue;
        if (best == lanes.size() ||
            lanes[i].head.arrival < lanes[best].head.arrival)
            best = i;
    }
    if (best == lanes.size())
        return false;

    out = lanes[best].head;
    out.tenant = static_cast<TenantId>(best);
    AERO_CHECK(!started || out.arrival >= lastArrival,
               "tenant stream ", best, " is not arrival-ordered");
    started = true;
    lastArrival = out.arrival;

    TraceRecord refilled;
    if (lanes[best].stream->next(refilled)) {
        AERO_CHECK(refilled.arrival >= lanes[best].head.arrival,
                   "tenant stream ", best, " is not arrival-ordered");
        lanes[best].head = refilled;
    } else {
        lanes[best].alive = false;
    }
    return true;
}

} // namespace aero
