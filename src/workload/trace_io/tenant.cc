#include "workload/trace_io/tenant.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace aero
{

namespace
{

std::uint64_t
parseCount(const std::string &entry, const std::string &field,
           const char *what)
{
    if (field.empty())
        AERO_FATAL("bad tenant mix entry '", entry, "': empty ", what);
    std::uint64_t v = 0;
    for (char c : field) {
        if (c < '0' || c > '9')
            AERO_FATAL("bad tenant mix entry '", entry, "': ", what,
                       " '", field, "' is not a number");
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            AERO_FATAL("bad tenant mix entry '", entry, "': ", what,
                       " '", field, "' overflows");
        v = v * 10 + digit;
    }
    return v;
}

} // namespace

std::vector<TenantSource>
parseTenantMixSpec(const std::string &spec)
{
    std::vector<TenantSource> sources;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(start, comma - start);
        start = comma + 1;
        if (entry.empty())
            AERO_FATAL("bad tenant mix spec '", spec, "': empty entry");

        TenantSource src;
        src.label = entry;
        if (entry[0] == '@') {
            src.tracePath = entry.substr(1);
            if (src.tracePath.empty())
                AERO_FATAL("bad tenant mix entry '", entry,
                           "': empty trace path");
        } else {
            const std::size_t c1 = entry.find(':');
            if (c1 == std::string::npos) {
                src.preset = entry;
            } else {
                src.preset = entry.substr(0, c1);
                const std::size_t c2 = entry.find(':', c1 + 1);
                const std::string reqs =
                    entry.substr(c1 + 1, c2 == std::string::npos
                                             ? std::string::npos
                                             : c2 - c1 - 1);
                src.requests = parseCount(entry, reqs, "request count");
                if (src.requests == 0)
                    AERO_FATAL("bad tenant mix entry '", entry,
                               "': zero request count");
                if (c2 != std::string::npos) {
                    if (entry.find(':', c2 + 1) != std::string::npos)
                        AERO_FATAL("bad tenant mix entry '", entry,
                                   "': too many fields");
                    src.seed = parseCount(entry, entry.substr(c2 + 1),
                                          "seed");
                    src.hasSeed = true;
                }
            }
            if (src.preset.empty())
                AERO_FATAL("bad tenant mix entry '", entry,
                           "': empty preset name");
        }
        sources.push_back(std::move(src));
    }
    if (sources.empty())
        AERO_FATAL("empty tenant mix spec");
    if (sources.size() >
        static_cast<std::size_t>(std::numeric_limits<TenantId>::max()) + 1)
        AERO_FATAL("tenant mix has ", sources.size(),
                   " tenants (max ",
                   std::numeric_limits<TenantId>::max() + 1, ")");
    return sources;
}

namespace
{

std::uint64_t
parseSloNumber(const std::string &entry, const std::string &field,
               const char *what)
{
    if (field.empty())
        AERO_FATAL("bad tenant SLO entry '", entry, "': empty ", what);
    std::uint64_t v = 0;
    for (char c : field) {
        if (c < '0' || c > '9')
            AERO_FATAL("bad tenant SLO entry '", entry, "': ", what,
                       " '", field, "' is not a number");
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            AERO_FATAL("bad tenant SLO entry '", entry, "': ", what,
                       " '", field, "' overflows");
        v = v * 10 + digit;
    }
    return v;
}

} // namespace

const TenantSlo *
TenantSloSpec::find(TenantId tenant) const
{
    for (const TenantSlo &t : tenants)
        if (t.tenant == tenant)
            return &t;
    return nullptr;
}

TenantId
TenantSloSpec::maxTenant() const
{
    TenantId m = 0;
    for (const TenantSlo &t : tenants)
        m = std::max(m, t.tenant);
    return m;
}

TenantSloSpec
parseTenantSloSpec(const std::string &spec)
{
    constexpr std::uint32_t kMaxWeight = 1024;

    if (spec.empty())
        AERO_FATAL("empty tenant SLO spec");

    TenantSloSpec out;
    out.label = spec;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(start, comma - start);
        start = comma + 1;
        if (entry.empty())
            AERO_FATAL("bad tenant SLO spec '", spec, "': empty entry");

        const std::size_t c1 = entry.find(':');
        if (c1 == std::string::npos)
            AERO_FATAL("bad tenant SLO entry '", entry,
                       "': no settings (expected "
                       "<tenant>:<key>=<value>[:<key>=<value>...])");
        const std::uint64_t id =
            parseSloNumber(entry, entry.substr(0, c1), "tenant id");
        if (id > std::numeric_limits<TenantId>::max())
            AERO_FATAL("bad tenant SLO entry '", entry, "': tenant id ",
                       id, " out of range (max ",
                       std::numeric_limits<TenantId>::max(), ")");

        TenantSlo slo;
        slo.tenant = static_cast<TenantId>(id);
        if (out.find(slo.tenant) != nullptr)
            AERO_FATAL("bad tenant SLO spec '", spec,
                       "': duplicate tenant ", id);

        bool sawWeight = false, sawIops = false, sawBw = false,
             sawBurst = false, sawP99 = false;
        std::size_t fieldStart = c1 + 1;
        while (fieldStart <= entry.size()) {
            std::size_t colon = entry.find(':', fieldStart);
            if (colon == std::string::npos)
                colon = entry.size();
            const std::string field =
                entry.substr(fieldStart, colon - fieldStart);
            fieldStart = colon + 1;

            const std::size_t eq = field.find('=');
            if (eq == std::string::npos || eq == 0)
                AERO_FATAL("bad tenant SLO entry '", entry, "': field '",
                           field, "' is not <key>=<value>");
            const std::string key = field.substr(0, eq);
            const std::string value = field.substr(eq + 1);
            if (key == "weight") {
                if (sawWeight)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': duplicate key 'weight'");
                sawWeight = true;
                const std::uint64_t w =
                    parseSloNumber(entry, value, "weight");
                if (w < 1 || w > kMaxWeight)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': weight ", w, " out of range [1, ",
                               kMaxWeight, "]");
                slo.weight = static_cast<std::uint32_t>(w);
            } else if (key == "iops") {
                if (sawIops)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': duplicate key 'iops'");
                sawIops = true;
                slo.iopsBudget =
                    parseSloNumber(entry, value, "iops budget");
                if (slo.iopsBudget == 0)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': zero iops budget");
            } else if (key == "bw") {
                if (sawBw)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': duplicate key 'bw'");
                sawBw = true;
                slo.bwBudgetKBps =
                    parseSloNumber(entry, value, "bandwidth budget");
                if (slo.bwBudgetKBps == 0)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': zero bandwidth budget");
            } else if (key == "burst") {
                if (sawBurst)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': duplicate key 'burst'");
                sawBurst = true;
                slo.burst = parseSloNumber(entry, value, "burst");
                if (slo.burst == 0)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': zero burst allowance");
            } else if (key == "p99") {
                if (sawP99)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': duplicate key 'p99'");
                sawP99 = true;
                slo.p99TargetUs =
                    parseSloNumber(entry, value, "p99 target");
                if (slo.p99TargetUs == 0)
                    AERO_FATAL("bad tenant SLO entry '", entry,
                               "': zero p99 target");
            } else {
                AERO_FATAL("bad tenant SLO entry '", entry,
                           "': unknown key '", key,
                           "' (valid: weight, iops, bw, burst, p99)");
            }
        }
        out.tenants.push_back(slo);
    }
    if (out.tenants.empty())
        AERO_FATAL("empty tenant SLO spec");
    return out;
}

std::string
renderTenantSloSpec(const TenantSloSpec &spec)
{
    std::string s;
    for (const TenantSlo &t : spec.tenants) {
        if (!s.empty())
            s += ',';
        s += std::to_string(t.tenant);
        const std::size_t bare = s.size();
        if (t.weight != 1)
            s += ":weight=" + std::to_string(t.weight);
        if (t.iopsBudget != 0)
            s += ":iops=" + std::to_string(t.iopsBudget);
        if (t.bwBudgetKBps != 0)
            s += ":bw=" + std::to_string(t.bwBudgetKBps);
        if (t.burst != kDefaultSloBurst)
            s += ":burst=" + std::to_string(t.burst);
        if (t.p99TargetUs != 0)
            s += ":p99=" + std::to_string(t.p99TargetUs);
        if (s.size() == bare)
            s += ":weight=1"; // all-default entry still needs a setting
    }
    return s;
}

std::unique_ptr<TraceStream>
openTenantSource(const TenantSource &src, const SyntheticConfig &base)
{
    if (!src.tracePath.empty()) {
        auto stream = std::make_unique<FileTraceStream>(src.tracePath);
        if (stream->pageKB() != base.pageSizeKB)
            AERO_FATAL("tenant trace ", src.tracePath, " uses ",
                       stream->pageKB(), " KB pages but the mix runs at ",
                       base.pageSizeKB, " KB");
        return stream;
    }
    SyntheticConfig cfg = base;
    cfg.spec = workloadByName(src.preset);
    if (src.requests != 0)
        cfg.numRequests = src.requests;
    if (src.hasSeed)
        cfg.seed = src.seed;
    cfg.intensityScale = base.intensityScale * src.intensity;
    return std::make_unique<VectorTraceStream>(generateTrace(cfg));
}

TenantMix::TenantMix(std::vector<std::unique_ptr<TraceStream>> streams)
{
    AERO_CHECK(!streams.empty(), "tenant mix needs at least one stream");
    AERO_CHECK(streams.size() <=
                   static_cast<std::size_t>(
                       std::numeric_limits<TenantId>::max()) + 1,
               "tenant mix has too many streams");
    lanes.reserve(streams.size());
    for (auto &stream : streams) {
        Lane lane;
        lane.stream = std::move(stream);
        lane.alive = lane.stream->next(lane.head);
        lanes.push_back(std::move(lane));
    }
}

bool
TenantMix::next(TraceRecord &out)
{
    std::size_t best = lanes.size();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        if (!lanes[i].alive)
            continue;
        if (best == lanes.size() ||
            lanes[i].head.arrival < lanes[best].head.arrival)
            best = i;
    }
    if (best == lanes.size())
        return false;

    out = lanes[best].head;
    out.tenant = static_cast<TenantId>(best);
    AERO_CHECK(!started || out.arrival >= lastArrival,
               "tenant stream ", best, " is not arrival-ordered");
    started = true;
    lastArrival = out.arrival;

    TraceRecord refilled;
    if (lanes[best].stream->next(refilled)) {
        AERO_CHECK(refilled.arrival >= lanes[best].head.arrival,
                   "tenant stream ", best, " is not arrival-ordered");
        lanes[best].head = refilled;
    } else {
        lanes[best].alive = false;
    }
    return true;
}

} // namespace aero
