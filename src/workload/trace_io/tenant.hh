/**
 * @file
 * Multi-tenant trace composition: merge N per-tenant request streams
 * into one arrival-ordered stream, tagging every record with the
 * tenant it came from so SsdMetrics can keep per-tenant latency
 * reservoirs (ssd/metrics.hh).
 *
 * A mix is described by a spec string of comma-separated tenants, each
 * either a Table-3 synthetic preset or an `aero-trace/1` file:
 *
 *   prxy:20000:7,hm:20000:1007,@/data/web.trc
 *
 *   entry := preset[:requests[:seed]] | @path
 *
 * Tenant ids are assigned by position (the first entry is tenant 0).
 */

#ifndef AERO_WORKLOAD_TRACE_IO_TENANT_HH
#define AERO_WORKLOAD_TRACE_IO_TENANT_HH

#include <memory>

#include "workload/synthetic.hh"
#include "workload/trace_io/stream.hh"

namespace aero
{

/** One tenant of a mix: a synthetic preset or a trace file. */
struct TenantSource
{
    std::string label;      //!< spec entry verbatim (for reports)
    std::string tracePath;  //!< nonempty: aero-trace/1 file
    std::string preset;     //!< nonempty: Table-3 workload name
    std::uint64_t requests = 0; //!< synthetic override (0: base default)
    std::uint64_t seed = 0;
    bool hasSeed = false;
    /** Arrival-rate multiplier for synthetic sources (programmatic
     *  only, not part of the spec grammar); >1 makes a hotter tenant. */
    double intensity = 1.0;
};

/** Parse a tenant-mix spec string; fatal with the bad entry quoted. */
std::vector<TenantSource> parseTenantMixSpec(const std::string &spec);

/** Default token-bucket depth, in cost units (see TenantSlo::burst). */
constexpr std::uint64_t kDefaultSloBurst = 16;

/**
 * One tenant's service-level objective: admission budgets enforced by
 * the TracePump token buckets, a weighted-fair share enforced by the
 * queued channel arbitration, and an optional read-p99 target the
 * metrics layer scores attainment against. Zero budgets/targets mean
 * "unlimited" / "no target"; weight 1 is the unweighted default.
 */
struct TenantSlo
{
    TenantId tenant = 0;
    std::uint32_t weight = 1;        //!< WFQ share, 1..1024
    std::uint64_t iopsBudget = 0;    //!< admitted requests/s (0: unlimited)
    std::uint64_t bwBudgetKBps = 0;  //!< admitted KB/s (0: unlimited)
    /** Bucket depth in cost units (requests / KB): how far a tenant may
     *  burst ahead of its sustained rate before admission defers. */
    std::uint64_t burst = kDefaultSloBurst;
    std::uint64_t p99TargetUs = 0;   //!< read p99 target (0: no target)
};

/**
 * A parsed per-tenant SLO table. The spec string is comma-separated
 * entries, each a tenant id followed by `key=value` settings:
 *
 *   0:weight=8:p99=1500,1:weight=1:iops=2000:burst=32
 *
 *   entry := <tenant>:<key>=<value>[:<key>=<value>...]
 *   key   := weight | iops | bw | burst | p99
 *
 * Tenant ids are explicit (unlike TenantMix's positional ids) so a
 * spec can target a subset of a mix; every id must be distinct.
 */
struct TenantSloSpec
{
    std::string label;               //!< spec string verbatim (reports)
    std::vector<TenantSlo> tenants;  //!< spec order, distinct ids

    bool empty() const { return tenants.empty(); }

    /** The entry for @p tenant, or nullptr when the spec has none. */
    const TenantSlo *find(TenantId tenant) const;

    /** Largest tenant id named by the spec (0 when empty). */
    TenantId maxTenant() const;
};

/** Parse a tenant-SLO spec string; fatal with the bad entry quoted. */
TenantSloSpec parseTenantSloSpec(const std::string &spec);

/**
 * Render a spec back to its canonical string form: every non-default
 * setting, keys in grammar order. parseTenantSloSpec() round-trips it.
 */
std::string renderTenantSloSpec(const TenantSloSpec &spec);

/**
 * Open one tenant's stream. Trace-file sources must match @p base's
 * page size (fatal otherwise); synthetic sources start from @p base
 * with the entry's preset/requests/seed overrides applied.
 */
std::unique_ptr<TraceStream> openTenantSource(const TenantSource &src,
                                              const SyntheticConfig &base);

/**
 * K-way arrival-time merge over per-tenant streams. Ties break stably
 * toward the lowest tenant index, so a mix replays identically no
 * matter how the sources interleave. Records are retagged with their
 * source index; each source must itself be arrival-ordered (checked).
 */
class TenantMix : public TraceStream
{
  public:
    explicit TenantMix(std::vector<std::unique_ptr<TraceStream>> streams);

    bool next(TraceRecord &out) override;

    std::size_t tenantCount() const { return lanes.size(); }

  private:
    struct Lane
    {
        std::unique_ptr<TraceStream> stream;
        TraceRecord head;
        bool alive = false;
    };

    std::vector<Lane> lanes;
    Tick lastArrival = 0;
    bool started = false;
};

} // namespace aero

#endif // AERO_WORKLOAD_TRACE_IO_TENANT_HH
