/**
 * @file
 * Multi-tenant trace composition: merge N per-tenant request streams
 * into one arrival-ordered stream, tagging every record with the
 * tenant it came from so SsdMetrics can keep per-tenant latency
 * reservoirs (ssd/metrics.hh).
 *
 * A mix is described by a spec string of comma-separated tenants, each
 * either a Table-3 synthetic preset or an `aero-trace/1` file:
 *
 *   prxy:20000:7,hm:20000:1007,@/data/web.trc
 *
 *   entry := preset[:requests[:seed]] | @path
 *
 * Tenant ids are assigned by position (the first entry is tenant 0).
 */

#ifndef AERO_WORKLOAD_TRACE_IO_TENANT_HH
#define AERO_WORKLOAD_TRACE_IO_TENANT_HH

#include <memory>

#include "workload/synthetic.hh"
#include "workload/trace_io/stream.hh"

namespace aero
{

/** One tenant of a mix: a synthetic preset or a trace file. */
struct TenantSource
{
    std::string label;      //!< spec entry verbatim (for reports)
    std::string tracePath;  //!< nonempty: aero-trace/1 file
    std::string preset;     //!< nonempty: Table-3 workload name
    std::uint64_t requests = 0; //!< synthetic override (0: base default)
    std::uint64_t seed = 0;
    bool hasSeed = false;
};

/** Parse a tenant-mix spec string; fatal with the bad entry quoted. */
std::vector<TenantSource> parseTenantMixSpec(const std::string &spec);

/**
 * Open one tenant's stream. Trace-file sources must match @p base's
 * page size (fatal otherwise); synthetic sources start from @p base
 * with the entry's preset/requests/seed overrides applied.
 */
std::unique_ptr<TraceStream> openTenantSource(const TenantSource &src,
                                              const SyntheticConfig &base);

/**
 * K-way arrival-time merge over per-tenant streams. Ties break stably
 * toward the lowest tenant index, so a mix replays identically no
 * matter how the sources interleave. Records are retagged with their
 * source index; each source must itself be arrival-ordered (checked).
 */
class TenantMix : public TraceStream
{
  public:
    explicit TenantMix(std::vector<std::unique_ptr<TraceStream>> streams);

    bool next(TraceRecord &out) override;

    std::size_t tenantCount() const { return lanes.size(); }

  private:
    struct Lane
    {
        std::unique_ptr<TraceStream> stream;
        TraceRecord head;
        bool alive = false;
    };

    std::vector<Lane> lanes;
    Tick lastArrival = 0;
    bool started = false;
};

} // namespace aero

#endif // AERO_WORKLOAD_TRACE_IO_TENANT_HH
