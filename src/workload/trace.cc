#include "workload/trace.hh"

#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace aero
{

TraceStats
computeStats(const Trace &trace, std::uint32_t page_kb)
{
    TraceStats s;
    s.requests = trace.size();
    if (trace.empty())
        return s;
    std::uint64_t reads = 0;
    double size_sum = 0.0;
    for (const auto &r : trace) {
        if (r.op == IoOp::Read)
            ++reads;
        size_sum += static_cast<double>(r.pages) * page_kb;
        const Lpn last = r.startPage + r.pages - 1;
        if (last > s.maxPage)
            s.maxPage = last;
    }
    s.readRatio = static_cast<double>(reads) /
                  static_cast<double>(trace.size());
    s.avgReqSizeKB = size_sum / static_cast<double>(trace.size());
    if (trace.size() > 1) {
        const double span = static_cast<double>(trace.back().arrival -
                                                trace.front().arrival);
        s.avgInterArrivalMs =
            span / static_cast<double>(kMs) /
            static_cast<double>(trace.size() - 1);
    }
    return s;
}

void
saveTrace(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        AERO_FATAL("cannot open trace file for writing: ", path);
    out << "timestamp_ns,op,start_page,pages\n";
    for (const auto &r : trace) {
        out << r.arrival << ',' << (r.op == IoOp::Read ? 'R' : 'W')
            << ',' << r.startPage << ',' << r.pages << '\n';
    }
    if (!out)
        AERO_FATAL("short write to trace file: ", path);
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        AERO_FATAL("cannot open trace file: ", path);
    Trace trace;
    std::string line;
    std::getline(in, line);  // header
    std::size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        TraceRecord rec;
        char opc = 0;
        unsigned long long ts = 0, page = 0, pages = 0;
        if (std::sscanf(line.c_str(), "%llu,%c,%llu,%llu", &ts, &opc,
                        &page, &pages) != 4 ||
            (opc != 'R' && opc != 'W') || pages == 0) {
            AERO_FATAL("malformed trace record at ", path, ":", lineno,
                       ": ", line);
        }
        rec.arrival = ts;
        rec.op = opc == 'R' ? IoOp::Read : IoOp::Write;
        rec.startPage = page;
        rec.pages = static_cast<std::uint32_t>(pages);
        trace.push_back(rec);
    }
    return trace;
}

std::string
statsRow(const std::string &name, const TraceStats &s)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-8s %9zu reqs  read %5.1f%%  avg %5.1f KB  "
                  "inter-arrival %8.2f ms",
                  name.c_str(), s.requests, 100.0 * s.readRatio,
                  s.avgReqSizeKB, s.avgInterArrivalMs);
    return buf;
}

} // namespace aero
