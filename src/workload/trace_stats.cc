#include "workload/trace_stats.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace aero
{

ExtendedTraceStats
computeExtendedStats(const Trace &trace, std::uint32_t page_kb)
{
    ExtendedTraceStats s;
    s.basic = computeStats(trace, page_kb);
    if (trace.empty())
        return s;

    double wsum = 0.0, rsum = 0.0;
    std::uint64_t wcnt = 0, rcnt = 0;
    std::unordered_map<Lpn, std::uint64_t> touch;
    for (const auto &r : trace) {
        const double kb = static_cast<double>(r.pages) * page_kb;
        if (r.op == IoOp::Read) {
            rsum += kb;
            ++rcnt;
        } else {
            wsum += kb;
            ++wcnt;
        }
        // Count first-page touches only: cheap proxy for locality that is
        // insensitive to request size.
        touch[r.startPage] += 1;
        s.totalPagesAccessed += r.pages;
    }
    s.readAvgSizeKB = rcnt ? rsum / static_cast<double>(rcnt) : 0.0;
    s.writeAvgSizeKB = wcnt ? wsum / static_cast<double>(wcnt) : 0.0;
    s.distinctPages = touch.size();

    std::vector<std::uint64_t> counts;
    counts.reserve(touch.size());
    std::uint64_t total = 0;
    for (const auto &[page, cnt] : touch) {
        counts.push_back(cnt);
        total += cnt;
    }
    std::sort(counts.begin(), counts.end(), std::greater<>());
    const std::size_t hot_n =
        std::max<std::size_t>(1, counts.size() / 100);
    std::uint64_t hot = 0;
    for (std::size_t i = 0; i < hot_n && i < counts.size(); ++i)
        hot += counts[i];
    s.hot1pctFraction = total
        ? static_cast<double>(hot) / static_cast<double>(total)
        : 0.0;
    return s;
}

Json
toJson(const ExtendedTraceStats &s)
{
    Json row = Json::object();
    row["requests"] = static_cast<std::uint64_t>(s.basic.requests);
    row["read_ratio"] = s.basic.readRatio;
    row["avg_req_size_kb"] = s.basic.avgReqSizeKB;
    row["avg_inter_arrival_ms"] = s.basic.avgInterArrivalMs;
    row["max_page"] = s.basic.maxPage;
    row["write_avg_size_kb"] = s.writeAvgSizeKB;
    row["read_avg_size_kb"] = s.readAvgSizeKB;
    row["hot_1pct_fraction"] = s.hot1pctFraction;
    row["distinct_pages"] = s.distinctPages;
    row["total_pages_accessed"] = s.totalPagesAccessed;
    return row;
}

ExtendedTraceStats
extendedStatsFromJson(const Json &row)
{
    ExtendedTraceStats s;
    s.basic.requests =
        static_cast<std::size_t>(row.get("requests").asUint64());
    s.basic.readRatio = row.get("read_ratio").asDouble();
    s.basic.avgReqSizeKB = row.get("avg_req_size_kb").asDouble();
    s.basic.avgInterArrivalMs =
        row.get("avg_inter_arrival_ms").asDouble();
    s.basic.maxPage = row.get("max_page").asUint64();
    s.writeAvgSizeKB = row.get("write_avg_size_kb").asDouble();
    s.readAvgSizeKB = row.get("read_avg_size_kb").asDouble();
    s.hot1pctFraction = row.get("hot_1pct_fraction").asDouble();
    s.distinctPages = row.get("distinct_pages").asUint64();
    s.totalPagesAccessed = row.get("total_pages_accessed").asUint64();
    return s;
}

} // namespace aero
