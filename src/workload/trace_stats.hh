/**
 * @file
 * Extended trace analysis beyond the Table 3 aggregates: footprint
 * coverage, hot-page concentration, and read/write size breakdowns --
 * used by the workload tests and the tab03 bench.
 */

#ifndef AERO_WORKLOAD_TRACE_STATS_HH
#define AERO_WORKLOAD_TRACE_STATS_HH

#include "exp/json.hh"
#include "workload/trace.hh"

namespace aero
{

struct ExtendedTraceStats
{
    TraceStats basic;
    double writeAvgSizeKB = 0.0;
    double readAvgSizeKB = 0.0;
    /** Fraction of accesses landing on the hottest 1 % of touched pages. */
    double hot1pctFraction = 0.0;
    /** Distinct pages touched / footprint pages scanned. */
    std::uint64_t distinctPages = 0;
    std::uint64_t totalPagesAccessed = 0;
};

ExtendedTraceStats computeExtendedStats(const Trace &trace,
                                        std::uint32_t page_kb);

/** @name Campaign-journal codec (exact round trip, bit-for-bit). */
/** @{ */
Json toJson(const ExtendedTraceStats &s);
ExtendedTraceStats extendedStatsFromJson(const Json &row);
/** @} */

} // namespace aero

#endif // AERO_WORKLOAD_TRACE_STATS_HH
