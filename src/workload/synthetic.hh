/**
 * @file
 * Synthetic trace generation matched to a WorkloadSpec's aggregate
 * statistics: Poisson arrivals at the spec's (accelerated) rate, request
 * sizes drawn log-normally around the spec's mean, Zipfian spatial
 * locality for both reads and hot writes, plus sequential write runs --
 * the mix that drives realistic GC invalidation patterns.
 */

#ifndef AERO_WORKLOAD_SYNTHETIC_HH
#define AERO_WORKLOAD_SYNTHETIC_HH

#include "workload/presets.hh"
#include "workload/trace.hh"

namespace aero
{

struct SyntheticConfig
{
    WorkloadSpec spec;
    std::uint64_t footprintPages = 1 << 20;  //!< logical pages touched
    std::uint32_t pageSizeKB = 16;
    std::uint64_t numRequests = 100000;
    std::uint64_t seed = 99;
    double zipfTheta = 0.9;          //!< skew of the hot set
    double seqWriteFraction = 0.35;  //!< writes that extend a seq. stream
    /** Additional arrival-rate multiplier (1 = spec rate). */
    double intensityScale = 1.0;
};

Trace generateTrace(const SyntheticConfig &cfg);

} // namespace aero

#endif // AERO_WORKLOAD_SYNTHETIC_HH
