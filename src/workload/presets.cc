#include "workload/presets.hh"

#include <sstream>

#include "common/logging.hh"

namespace aero
{

const std::vector<WorkloadSpec> &
table3Workloads()
{
    static const std::vector<WorkloadSpec> specs = {
        // name     source     read   KB    inter-ms  msrc
        {"ali.A",  "ali_32",   0.07, 54.0,  16.3,  false},
        {"ali.B",  "ali_3",    0.52, 26.0, 111.8,  false},
        {"ali.C",  "ali_12",   0.69, 38.0,  57.9,  false},
        {"ali.D",  "ali_121",  0.78, 18.0,  13.8,  false},
        {"ali.E",  "ali_124",  0.95, 36.0,   5.1,  false},
        {"rsrch",  "rsrch_0",  0.09,  9.0, 421.9,  true},
        {"stg",    "stg_0",    0.15, 12.0, 297.8,  true},
        {"hm",     "hm_0",     0.36,  8.0, 151.5,  true},
        {"prxy",   "prxy_1",   0.65, 13.0,   3.6,  true},
        {"proj",   "proj_2",   0.88, 42.0,  20.6,  true},
        {"usr",    "usr_1",    0.91, 49.0,  13.4,  true},
    };
    return specs;
}

const WorkloadSpec &
workloadByName(const std::string &name)
{
    for (const auto &w : table3Workloads()) {
        if (w.name == name || w.sourceTrace == name)
            return w;
    }
    std::ostringstream os;
    const auto &specs = table3Workloads();
    for (std::size_t i = 0; i < specs.size(); ++i)
        os << (i ? ", " : "") << specs[i].name;
    AERO_FATAL("unknown workload: '", name,
               "' (valid Table-3 names: ", os.str(),
               "; trace-backed workloads are named '@<file>' and take an "
               "aero-trace/1 file)");
}

} // namespace aero
