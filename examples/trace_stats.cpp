/**
 * @file
 * Characterize an `aero-trace/1` binary trace without loading it:
 *
 *   trace_stats <trace.trc>
 *
 * One pass through the streaming reader computes the Table-3 aggregates
 * (request count, read ratio, mean request size, mean inter-arrival,
 * footprint) for the whole trace and per tenant, in memory bounded by
 * the reader's chunk buffer — a multi-billion-request trace needs the
 * same few hundred KB as a toy one.
 */

#include <cstdio>

#include "common/logging.hh"
#include "workload/trace_io/stream.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    if (argc != 2)
        AERO_FATAL("usage: ", argv[0], " <trace.trc>");
    FileTraceStream stream(argv[1]);
    std::printf("%s: aero-trace/1, page size %u KB, tenant tags %s\n",
                argv[1], stream.pageKB(),
                stream.hasTenantTags() ? "yes" : "no");

    const StreamTraceStats stats =
        computeStreamStats(stream, stream.pageKB());
    std::printf("%s\n", statsRow("total", stats.total).c_str());
    if (stats.perTenant.size() > 1) {
        for (std::size_t t = 0; t < stats.perTenant.size(); ++t) {
            if (stats.perTenant[t].requests == 0)
                continue;
            char name[32];
            std::snprintf(name, sizeof(name), "t%zu", t);
            std::printf("%s\n",
                        statsRow(name, stats.perTenant[t]).c_str());
        }
    }
    std::printf("footprint: %llu pages (max page %llu), buffered at most "
                "%zu records\n",
                static_cast<unsigned long long>(stats.total.maxPage + 1),
                static_cast<unsigned long long>(stats.total.maxPage),
                stream.maxBufferedRecords());
    return 0;
}
