/**
 * @file
 * Characterization scenario: the workflow an SSD vendor would run to
 * deploy AERO on a new NAND generation (the paper's section 5 / 6
 * methodology), exercised end to end on the virtual chip farm:
 *
 *   1. probe one block with m-ISPE and print its fail-bit trajectory;
 *   2. run the characterization campaign and derive the chip's
 *      gamma/delta constants;
 *   3. build the erase-timing parameter table (EPT) from the campaign;
 *   4. sanity-check AERO with the derived table against Baseline.
 */

#include <cstdio>

#include "core/aero_scheme.hh"
#include "core/ept_builder.hh"
#include "devchar/experiments.hh"
#include "erase/baseline_ispe.hh"

using namespace aero;

int
main()
{
    // 1. One block's m-ISPE trajectory (what GET FEATURE would return).
    PopulationConfig pc;
    pc.numChips = 12;
    pc.geometry = ChipGeometry{1, 24, 16};
    pc.seed = 777;
    ChipPopulation pop(pc);
    {
        NandChip &chip = pop.chip(0);
        chip.ageBaseline(0, 2500);
        const auto m = measureMIspe(chip, 0);
        std::printf("block 0 at 2.5K PEC: N_ISPE=%d, mtEP=%.1f ms, "
                    "mtBERS=%.1f ms\n",
                    m.nIspe, 0.5 * m.finalLoopSlots, m.mtBersMs);
        std::printf("fail-bit trajectory (per 0.5 ms pulse): ");
        for (const double f : m.failAfterSlot)
            std::printf("%.0f ", f);
        std::printf("\n\n");
    }

    // 2. Fail-bit constants from the Fig. 7 style campaign.
    FarmConfig fc;
    fc.numChips = 12;
    fc.blocksPerChip = 20;
    fc.seed = 778;
    const auto fig7 = runFig7Experiment(fc, {1500, 2500, 3500});
    std::printf("derived constants: gamma=%.0f delta=%.0f\n\n",
                fig7.gammaEstimate, fig7.deltaEstimate);

    // 3. EPT from the full characterization campaign.
    EptBuilderConfig bcfg;
    bcfg.blocksPerChip = 16;
    EptBuilder builder(pop, bcfg);
    const Ept ept = builder.build();
    std::printf("%s\n", ept.toString(pop.params()).c_str());

    // 4. Deploy: AERO with the derived table vs Baseline on fresh chips.
    PopulationConfig vc = pc;
    vc.seed = 779;
    ChipPopulation verify_a(vc), verify_b(vc);
    NandChip &chip_base = verify_a.chip(0);
    NandChip &chip_aero = verify_b.chip(0);
    BaselineIspe base(chip_base, SchemeOptions{});
    AeroScheme aero(chip_aero, SchemeOptions{}, true, ept);
    double lat_base = 0.0, lat_aero = 0.0;
    double dmg_base = 0.0, dmg_aero = 0.0;
    for (int round = 0; round < 50; ++round) {
        for (int b = 0; b < chip_base.numBlocks(); ++b) {
            const auto ob = eraseNow(base, static_cast<BlockId>(b));
            const auto oa = eraseNow(aero, static_cast<BlockId>(b));
            lat_base += ticksToMs(ob.latency);
            lat_aero += ticksToMs(oa.latency);
            dmg_base += ob.damage;
            dmg_aero += oa.damage;
        }
    }
    std::printf("50 P/E cycles on %d fresh blocks:\n",
                chip_base.numBlocks());
    std::printf("  avg erase latency: Baseline %.2f ms, AERO %.2f ms "
                "(%.0f%% shorter)\n",
                lat_base / (50.0 * chip_base.numBlocks()),
                lat_aero / (50.0 * chip_base.numBlocks()),
                100.0 * (1.0 - lat_aero / lat_base));
    std::printf("  erase-induced stress: AERO at %.0f%% of Baseline\n",
                100.0 * dmg_aero / dmg_base);
    std::printf("  shallow probes: %llu, margin-spending erases: %llu\n",
                static_cast<unsigned long long>(
                    aero.stats().shallowProbes),
                static_cast<unsigned long long>(
                    aero.stats().incompleteAccepts));
    return 0;
}
