/**
 * @file
 * Generic command-line sweep driver: declare any grid the paper's
 * evaluation uses straight from the shell, run it on all cores, and drop
 * machine-readable artifacts. Scheme and suspension names resolve through
 * the string-keyed registries, so this is also the round-trip demo for
 * schemeKindFromName().
 *
 *   run_sweep --workloads prxy,usr --schemes Baseline,AERO \
 *             --pecs 500,2500 --requests 20000 --seeds 7,1007 \
 *             --suspensions on --threads 8 --json out.json --csv out.csv
 *
 * Every flag is optional; the default is a single Baseline/prxy/0.5K
 * point. `--progress` prints per-point completion lines to stderr.
 * `--checkpoint PATH` journals each completed point to PATH and, on a
 * rerun, resumes from it instead of restarting the grid from zero; the
 * final artifacts are bit-identical to an uninterrupted run.
 *
 * Distributed campaigns (see exp/campaign.hh for the journal formats):
 * `--workers N` forks N worker processes sharing `--checkpoint PATH`
 * as a journal directory, coordinating through file-locked claims;
 * `--shard i/N` runs only the points at expand() indices congruent to
 * i mod N (the cross-machine split — point each shard's process at the
 * same journal directory, or merge their directories afterwards);
 * `--compact PATH` rewrites a journal (file or directory) down to one
 * deduplicated file and exits. Artifacts stay byte-identical to a
 * single-process clean run at any worker or shard count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "erase/scheme_registry.hh"
#include "exp/checkpoint.hh"
#include "exp/report.hh"
#include "exp/sweep.hh"

using namespace aero;

namespace
{

double
parseDouble(const std::string &flag, const std::string &tok)
{
    char *end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == nullptr || *end != '\0')
        AERO_FATAL(flag, ": '", tok, "' is not a number");
    return v;
}

std::uint64_t
parseU64(const std::string &flag, const std::string &tok)
{
    char *end = nullptr;
    const auto v = std::strtoull(tok.c_str(), &end, 10);
    if (tok.empty() || end == nullptr || *end != '\0' || tok[0] == '-')
        AERO_FATAL(flag, ": '", tok, "' is not a non-negative integer");
    return v;
}

int
parseInt(const std::string &flag, const std::string &tok)
{
    char *end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (tok.empty() || end == nullptr || *end != '\0')
        AERO_FATAL(flag, ": '", tok, "' is not an integer");
    return static_cast<int>(v);
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            out.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --workloads a,b,..    Table-3 workload names (default prxy)\n"
        "  --schemes a,b,..      scheme names, or 'all' (default "
        "Baseline)\n"
        "  --pecs p1,p2,..       P/E-cycle points, or 'paper' (default "
        "500)\n"
        "  --suspensions m,..    none|mid-segment (aliases off|on), or "
        "'both'\n"
        "  --misrates r1,..      injected FELP misprediction rates\n"
        "  --rbers b1,..         RBER requirements [bits/1KiB]\n"
        "  --gc-policies a,b,..  GC victim policies (default greedy)\n"
        "  --wear-levels a,b,..  wear-leveling policies (default none)\n"
        "  --seeds s1,..         per-point trace seeds (default 7)\n"
        "  --requests n          requests per point (default "
        "AERO_SIM_REQUESTS)\n"
        "  --threads n           worker threads (default "
        "AERO_SWEEP_THREADS)\n"
        "  --json path           write the JSON report\n"
        "  --csv path            write the CSV rows\n"
        "  --checkpoint path     journal completed points to this path "
        "and resume from it\n"
        "  --campaign name       journal campaign name (default "
        "run_sweep)\n"
        "  --workers n           fork n worker processes sharing the "
        "checkpoint directory\n"
        "  --shard i/N           run only expand() indices congruent to "
        "i mod N\n"
        "  --fsync               fsync every journal record (power-loss "
        "durability)\n"
        "  --compact path        compact a journal (file or directory) "
        "and exit\n"
        "  --status path         print who holds claims and per-worker "
        "progress for a journal, then exit\n"
        "  --progress            per-point progress on stderr\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    SweepBuilder builder;
    builder.requests(defaultSimRequests());
    int threads = 0;
    bool progress = false;
    bool fsync_records = false;
    int workers = 0;
    int shard_index = 0, shard_count = 1;
    std::string json_path, csv_path, checkpoint_path, compact_path;
    std::string status_path;
    std::string campaign = "run_sweep";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        if (arg == "--progress") {
            progress = true;
            continue;
        }
        if (arg == "--fsync") {
            fsync_records = true;
            continue;
        }
        if (i + 1 >= argc)
            AERO_FATAL(arg, " needs a value (see --help)");
        const std::string value = argv[++i];
        if (arg == "--workloads") {
            builder.workloads(splitList(value));
        } else if (arg == "--schemes") {
            if (value == "all")
                builder.allSchemes();
            else
                builder.schemeNames(splitList(value));
        } else if (arg == "--pecs") {
            if (value == "paper") {
                builder.paperPecs();
            } else {
                std::vector<double> pecs;
                for (const auto &tok : splitList(value))
                    pecs.push_back(parseDouble(arg, tok));
                builder.pecs(pecs);
            }
        } else if (arg == "--suspensions") {
            if (value == "both") {
                builder.suspensions({SuspensionMode::None,
                                     SuspensionMode::MidSegment});
            } else {
                std::vector<SuspensionMode> modes;
                for (const auto &tok : splitList(value))
                    modes.push_back(suspensionModeFromName(tok));
                builder.suspensions(modes);
            }
        } else if (arg == "--misrates") {
            std::vector<double> rates;
            for (const auto &tok : splitList(value))
                rates.push_back(parseDouble(arg, tok));
            builder.mispredictionRates(rates);
        } else if (arg == "--rbers") {
            std::vector<int> bits;
            for (const auto &tok : splitList(value))
                bits.push_back(parseInt(arg, tok));
            builder.rberRequirements(bits);
        } else if (arg == "--gc-policies") {
            builder.gcPolicies(splitList(value));
        } else if (arg == "--wear-levels") {
            builder.wearLevels(splitList(value));
        } else if (arg == "--seeds") {
            std::vector<std::uint64_t> seeds;
            for (const auto &tok : splitList(value))
                seeds.push_back(parseU64(arg, tok));
            builder.seeds(seeds);
        } else if (arg == "--requests") {
            builder.requests(parseU64(arg, value));
        } else if (arg == "--threads") {
            threads = parseInt(arg, value);
        } else if (arg == "--json") {
            json_path = value;
        } else if (arg == "--csv") {
            csv_path = value;
        } else if (arg == "--checkpoint") {
            checkpoint_path = value;
        } else if (arg == "--campaign") {
            campaign = value;
        } else if (arg == "--compact") {
            compact_path = value;
        } else if (arg == "--status") {
            status_path = value;
        } else if (arg == "--workers") {
            workers = parseInt(arg, value);
            if (workers < 1 || workers > 256)
                AERO_FATAL("--workers: '", value,
                           "' is not a worker count in [1, 256]");
        } else if (arg == "--shard") {
            const std::size_t slash = value.find('/');
            if (slash == std::string::npos || slash == 0 ||
                slash + 1 >= value.size())
                AERO_FATAL("--shard: '", value,
                           "' is not of the form i/N");
            shard_index = parseInt(arg, value.substr(0, slash));
            shard_count = parseInt(arg, value.substr(slash + 1));
            if (shard_count < 1 || shard_index < 0 ||
                shard_index >= shard_count)
                AERO_FATAL("--shard: need 0 <= i < N, got '", value,
                           "'");
        } else {
            AERO_FATAL("unknown option '", arg, "' (see --help)");
        }
    }

    if (!status_path.empty()) {
        const CampaignStatus status = campaignStatus(status_path);
        std::fputs(formatCampaignStatus(status).c_str(), stdout);
        return 0;
    }
    if (!compact_path.empty()) {
        const CompactStats stats = compactCampaignJournal(compact_path);
        std::printf("compacted %s: %zu file(s), %zu record(s) in, "
                    "%zu out\n",
                    compact_path.c_str(), stats.files, stats.recordsIn,
                    stats.recordsOut);
        return 0;
    }
    if ((workers > 1 || shard_count > 1) && checkpoint_path.empty()) {
        AERO_FATAL("--workers/--shard need --checkpoint: the processes "
                   "coordinate (and the artifact assembles) through the "
                   "journal");
    }

    const SweepSpec spec = builder.build();
    const SweepRunner runner(threads);
    std::printf("sweep: %zu points on %d threads\n", spec.size(),
                runner.threads());
    const auto onPoint =
        progress ? stderrProgress() : SweepRunner::Progress{};
    std::vector<SimResult> results;
    if (!checkpoint_path.empty()) {
        // Fork before opening the journal: each child opens its own
        // worker file (claims armed), the parent opens the merged
        // directory once every child has exited.
        const int workerIndex = forkCampaignWorkers(workers);
        JournalOptions options;
        options.fsyncRecords = fsync_records;
        if (workerIndex >= 0) {
            options.workerId = "w";
            options.workerId += std::to_string(workerIndex);
            options.claims = true;
        } else if (shard_count > 1) {
            // Shards own disjoint expand() slices, so they need no
            // claims — but each gets its own journal file so shard
            // processes can share one directory concurrently.
            options.workerId = "shard";
            options.workerId += std::to_string(shard_index);
        } else if (workers > 1 ||
                   std::filesystem::is_directory(checkpoint_path)) {
            options.workerId = "merge";
        }
        // Journal under this driver's bench-style name (--campaign, by
        // default "run_sweep") so the artifact self-identifies like a
        // BENCH_*.json (and cannot be spliced into another driver's
        // campaign by accident).
        SweepCheckpoint checkpoint(checkpoint_path, spec, campaign,
                                   options);
        if (workerIndex < 0 && checkpoint.cachedCount() > 0) {
            std::printf("checkpoint: resuming %zu/%zu points from %s\n",
                        checkpoint.cachedCount(), spec.size(),
                        checkpoint_path.c_str());
        }
        results = runner.run(spec, checkpoint, onPoint, shard_index,
                             shard_count);
        if (workerIndex >= 0) {
            // _Exit, not return: the child shares the parent's stdio
            // buffers, and flushing them here would duplicate output.
            // Artifact writing belongs to the parent's merged resume.
            std::_Exit(0);
        }
        if (shard_count > 1 &&
            checkpoint.cachedCount() < spec.size()) {
            std::printf("shard %d/%d: %zu/%zu points journaled; run "
                        "the remaining shards against this journal, "
                        "then rerun (or compact) to write artifacts\n",
                        shard_index, shard_count,
                        checkpoint.cachedCount(), spec.size());
            return 0;
        }
    } else {
        results = runner.run(spec, onPoint);
    }

    if (!json_path.empty())
        writeJsonFile(json_path, sweepReport(spec, results));
    if (!csv_path.empty())
        writeTextFile(csv_path, toCsv(results));

    std::printf("%-7s %-10s %7s %12s %9s %9s %10s\n", "wl", "scheme",
                "pec", "suspension", "avg[us]", "p99.99", "p99.9999");
    for (const auto &r : results) {
        std::printf("%-7s %-10s %7.0f %12s %9.1f %9.0f %10.0f\n",
                    r.point.workload.c_str(),
                    schemeKindName(r.point.scheme), r.point.pec,
                    suspensionModeName(r.point.suspension), r.avgReadUs,
                    r.p9999Us, r.p999999Us);
    }
    return 0;
}
