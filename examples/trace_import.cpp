/**
 * @file
 * Convert an MSR-Cambridge-style CSV block trace into the simulator's
 * `aero-trace/1` binary format:
 *
 *   trace_import <in.csv> <out.trc> [--page-kb N] [--unit-ns N]
 *                [--tenant N] [--no-rebase]
 *
 * Input lines are `timestamp,hostname,diskno,type,offset,size[,...]`
 * (Windows filetime timestamps, byte offsets/sizes, Read/Write type).
 * Timestamps are rebased to zero and scaled to nanoseconds; byte ranges
 * become page spans (a request straddling a page boundary occupies both
 * pages). The import streams line-by-line, so CSVs of any size convert
 * in bounded memory. Malformed lines are fatal with their 1-based line
 * number.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "workload/trace_io/import.hh"

using namespace aero;

namespace
{

std::uint64_t
parseNum(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (*value == '\0' || end == nullptr || *end != '\0')
        AERO_FATAL(flag, " needs a positive integer, got '", value, "'");
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string in_path, out_path;
    MsrcImportOptions opts;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--page-kb") == 0 && has_value) {
            opts.pageKB =
                static_cast<std::uint32_t>(parseNum(arg, argv[++i]));
            if (opts.pageKB == 0)
                AERO_FATAL("--page-kb must be > 0");
        } else if (std::strcmp(arg, "--unit-ns") == 0 && has_value) {
            opts.timestampUnitNs = parseNum(arg, argv[++i]);
            if (opts.timestampUnitNs == 0)
                AERO_FATAL("--unit-ns must be > 0");
        } else if (std::strcmp(arg, "--tenant") == 0 && has_value) {
            const std::uint64_t t = parseNum(arg, argv[++i]);
            if (t > std::numeric_limits<TenantId>::max())
                AERO_FATAL("--tenant must be <= ",
                           std::numeric_limits<TenantId>::max());
            opts.tenant = static_cast<TenantId>(t);
        } else if (std::strcmp(arg, "--no-rebase") == 0) {
            opts.rebaseToZero = false;
        } else if (arg[0] == '-') {
            AERO_FATAL("unknown argument '", arg, "' (usage: ", argv[0],
                       " <in.csv> <out.trc> [--page-kb N] [--unit-ns N]"
                       " [--tenant N] [--no-rebase])");
        } else if (in_path.empty()) {
            in_path = arg;
        } else if (out_path.empty()) {
            out_path = arg;
        } else {
            AERO_FATAL("unexpected extra argument '", arg, "'");
        }
    }
    if (in_path.empty() || out_path.empty())
        AERO_FATAL("usage: ", argv[0],
                   " <in.csv> <out.trc> [--page-kb N] [--unit-ns N]"
                   " [--tenant N] [--no-rebase]");

    const ImportSummary s = importMsrcCsvFile(in_path, out_path, opts);
    std::printf("imported %llu records (%llu reads, %llu writes) from "
                "%s\n",
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.reads),
                static_cast<unsigned long long>(s.writes),
                in_path.c_str());
    std::printf("wrote %s: page size %u KB, span %.3f ms, max page "
                "%llu\n",
                out_path.c_str(), opts.pageKB,
                ticksToMs(s.lastArrival - s.firstArrival),
                static_cast<unsigned long long>(s.maxPage));
    return 0;
}
