/**
 * @file
 * aero_diff: compare two experiment report files (`aero-sweep/1` /
 * `aero-devchar/1` JSON artifacts, or two CSV artifacts) — or two
 * *directories* of such files — and fail when any metric drifts beyond
 * tolerance: the CLI face of the regression gate.
 *
 *   aero_diff golden.json regenerated.json \
 *       [--rel-tol X] [--abs-tol X] [--ignore KEY]... [--max-rows N]
 *   aero_diff golden.csv regenerated.csv --rel-tol X
 *   aero_diff tests/golden regenerated-dir --rel-tol X
 *
 * A file ending in `.csv` is parsed as a CSV artifact and lifted into
 * report shape (integers exact, numbers toleranced, rows axis-keyed
 * when the sweep axis columns are present); both files must then be
 * CSV for the schemas to agree.
 *
 * When both arguments are directories, every `*.json` / `*.csv` file
 * (recursively) is paired with the same-named file on the other side
 * and diffed; unpaired files are reported and count as a difference.
 * One invocation thus gates a whole tree of baselines.
 *
 * Exit codes: 0 reports match, 1 reports differ (a per-metric delta
 * table is printed per file), 2 usage / I/O / JSON or CSV parse error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/diff.hh"

namespace
{

constexpr int kExitMatch = 0;
constexpr int kExitDiffer = 1;
constexpr int kExitError = 2;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <a.json|a.csv|dirA> <b.json|b.csv|dirB> [options]\n"
        "  --rel-tol X    relative tolerance for floating-point metrics\n"
        "  --abs-tol X    absolute tolerance for floating-point metrics\n"
        "  --ignore KEY   skip this key everywhere (repeatable)\n"
        "  --max-rows N   print at most N delta rows (default 50, 0=all)\n"
        "two directories diff every *.json/*.csv file pair by name\n"
        "exit status: 0 match, 1 differ, 2 error\n",
        argv0);
}

bool
isCsvPath(const char *path)
{
    const std::string p = path;
    return p.size() >= 4 && p.compare(p.size() - 4, 4, ".csv") == 0;
}

/** Read + parse one report, exiting with kExitError on any failure. */
aero::Json
loadReport(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "aero_diff: cannot open '%s'\n", path);
        std::exit(kExitError);
    }
    std::ostringstream content;
    content << in.rdbuf();
    if (in.bad()) {
        std::fprintf(stderr, "aero_diff: failed reading '%s'\n", path);
        std::exit(kExitError);
    }
    if (isCsvPath(path)) {
        aero::Json doc;
        std::string error;
        if (!aero::csvToReport(content.str(), &doc, &error)) {
            std::fprintf(stderr, "aero_diff: %s: %s\n", path,
                         error.c_str());
            std::exit(kExitError);
        }
        return doc;
    }
    aero::Json doc;
    aero::Json::ParseError err;
    if (!aero::Json::parse(content.str(), &doc, &err)) {
        std::fprintf(stderr, "aero_diff: %s: %s\n", path,
                     err.toString().c_str());
        std::exit(kExitError);
    }
    return doc;
}

double
parseDouble(const char *flag, const char *value, const char *argv0)
{
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    if (end == value || *end != '\0' || v < 0.0) {
        std::fprintf(stderr,
                     "aero_diff: %s needs a non-negative number, "
                     "got '%s'\n", flag, value);
        usage(argv0);
        std::exit(kExitError);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *pathA = nullptr;
    const char *pathB = nullptr;
    aero::DiffOptions opts;
    std::size_t maxRows = 50;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "aero_diff: %s needs a value\n",
                             arg);
                usage(argv[0]);
                std::exit(kExitError);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--rel-tol") == 0) {
            opts.relTol = parseDouble(arg, value(), argv[0]);
        } else if (std::strcmp(arg, "--abs-tol") == 0) {
            opts.absTol = parseDouble(arg, value(), argv[0]);
        } else if (std::strcmp(arg, "--ignore") == 0) {
            opts.ignoreKeys.push_back(value());
        } else if (std::strcmp(arg, "--max-rows") == 0) {
            const char *v = value();
            char *end = nullptr;
            maxRows = static_cast<std::size_t>(
                std::strtoull(v, &end, 10));
            // strtoull silently wraps "-5"; reject signs explicitly.
            if (end == v || *end != '\0' || v[0] == '-' ||
                v[0] == '+') {
                std::fprintf(stderr,
                             "aero_diff: --max-rows needs a "
                             "non-negative integer, got '%s'\n", v);
                usage(argv[0]);
                return kExitError;
            }
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return kExitMatch;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "aero_diff: unknown option '%s'\n",
                         arg);
            usage(argv[0]);
            return kExitError;
        } else if (!pathA) {
            pathA = arg;
        } else if (!pathB) {
            pathB = arg;
        } else {
            std::fprintf(stderr, "aero_diff: too many file arguments\n");
            usage(argv[0]);
            return kExitError;
        }
    }
    if (!pathA || !pathB) {
        usage(argv[0]);
        return kExitError;
    }

    const bool dirA = std::filesystem::is_directory(pathA);
    const bool dirB = std::filesystem::is_directory(pathB);
    if (dirA != dirB) {
        std::fprintf(stderr,
                     "aero_diff: cannot compare a directory with a "
                     "file ('%s' vs '%s')\n", pathA, pathB);
        return kExitError;
    }
    if (dirA) {
        aero::DirDiffResult result;
        try {
            result = aero::diffReportDirs(pathA, pathB, opts);
        } catch (const std::filesystem::filesystem_error &e) {
            // An unreadable subdirectory mid-walk must be exit 2 with
            // a message, not an uncaught-exception abort.
            std::fprintf(stderr, "aero_diff: %s\n", e.what());
            return kExitError;
        }
        for (const auto &file : result.compared) {
            if (!file.loaded) {
                std::printf("aero_diff: %s: error: %s\n",
                            file.name.c_str(), file.error.c_str());
            } else if (file.diff.match) {
                std::printf("aero_diff: %s: match (%zu rows, %zu "
                            "metrics)\n", file.name.c_str(),
                            file.diff.rowsCompared,
                            file.diff.metricsCompared);
            } else {
                std::printf("aero_diff: %s: %zu delta(s) over %zu/%zu "
                            "rows\n", file.name.c_str(),
                            file.diff.deltas.size(), file.diff.rowsA,
                            file.diff.rowsB);
                std::fputs(file.diff.table(maxRows).c_str(), stdout);
            }
        }
        for (const auto &name : result.onlyA)
            std::printf("aero_diff: only in %s: %s\n", pathA,
                        name.c_str());
        for (const auto &name : result.onlyB)
            std::printf("aero_diff: only in %s: %s\n", pathB,
                        name.c_str());
        const std::size_t unpaired =
            result.onlyA.size() + result.onlyB.size();
        std::size_t errors = 0;
        for (const auto &file : result.compared)
            errors += file.loaded ? 0 : 1;
        std::printf("aero_diff: %zu file pair(s) compared, %zu "
                    "matched, %zu differing, %zu unpaired, %zu "
                    "error(s) (rel-tol %g, abs-tol %g)\n",
                    result.compared.size(), result.matched,
                    result.compared.size() - result.matched - errors,
                    unpaired, errors, opts.relTol, opts.absTol);
        return result.exitCode();
    }

    const aero::Json a = loadReport(pathA);
    const aero::Json b = loadReport(pathB);
    const aero::DiffResult result = aero::diffReports(a, b, opts);

    if (result.match) {
        std::printf("aero_diff: match (%zu rows, %zu metrics compared, "
                    "rel-tol %g, abs-tol %g)\n",
                    result.rowsCompared, result.metricsCompared,
                    opts.relTol, opts.absTol);
        return kExitMatch;
    }
    std::printf("aero_diff: %s and %s differ: %zu delta(s) over %zu/%zu "
                "rows (rel-tol %g, abs-tol %g)\n",
                pathA, pathB, result.deltas.size(), result.rowsA,
                result.rowsB, opts.relTol, opts.absTol);
    std::fputs(result.table(maxRows).c_str(), stdout);
    return kExitDiffer;
}
