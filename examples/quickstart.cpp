/**
 * @file
 * Quickstart: build a simulated SSD with the AERO erase scheme, replay a
 * synthetic datacenter workload, and print the latency/lifetime-relevant
 * metrics. This is the 5-minute tour of the public API:
 *
 *   SsdConfig   -> describe the drive (topology, scheme, conditioning)
 *   Ssd         -> construct (prefills + warms up to steady state)
 *   generateTrace -> make a Table-3-style workload
 *   ssd.run     -> replay to completion
 *   ssd.metrics -> exact tail percentiles, IOPS, erase/GC counters
 */

#include <cstdio>

#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

using namespace aero;

int
main()
{
    // A capacity-reduced drive with the paper's topology (Table 2),
    // pre-aged to 2.5K P/E cycles, running full AERO.
    SsdConfig cfg = SsdConfig::bench();
    cfg.scheme = SchemeKind::Aero;
    cfg.initialPec = 2500;
    std::printf("%s\n", cfg.summary().c_str());

    Ssd ssd(cfg);

    // The paper's 'prxy' workload (65% reads, 13 KB, 0.36 ms effective
    // inter-arrival after the 10x MSRC acceleration).
    SyntheticConfig wc;
    wc.spec = workloadByName("prxy");
    wc.footprintPages = ssd.config().logicalPages();
    wc.numRequests = 20000;
    const Trace trace = generateTrace(wc);
    std::printf("replaying %zu requests...\n", trace.size());

    ssd.run(trace);

    const SsdMetrics &m = ssd.metrics();
    std::printf("\nresults\n-------\n%s", m.summary().c_str());
    std::printf("read p99.9   %8.0f us\n",
                ticksToUs(m.readLatency.percentile(0.999)));
    std::printf("read p99.99  %8.0f us\n",
                ticksToUs(m.readLatency.percentile(0.9999)));
    std::printf("read max     %8.0f us\n",
                ticksToUs(m.readLatency.max()));
    return 0;
}
