/**
 * @file
 * Datacenter scenario: a latency-sensitive service (the paper's
 * motivation) runs the same workload on drives that differ only in their
 * erase scheme. Prints the read-tail comparison that makes the case for
 * AERO: erase operations rarely touch the average but dominate the
 * 99.99th+ percentiles, and AERO shrinks exactly those.
 *
 * Usage: tail_latency_comparison [workload] [pec] [requests]
 */

#include <cstdio>
#include <cstdlib>

#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    const char *wl = argc > 1 ? argv[1] : "ali.D";
    const double pec = argc > 2 ? std::atof(argv[2]) : 2500.0;
    const std::uint64_t requests =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 30000;

    std::printf("workload %s at %.0f P/E cycles, %llu requests\n\n", wl,
                pec, static_cast<unsigned long long>(requests));
    std::printf("%-10s | %8s | %8s | %8s | %8s | %9s\n", "scheme",
                "avg[us]", "p99.9", "p99.99", "max[us]", "erase[ms]");
    std::printf("%s\n", std::string(68, '-').c_str());

    double base_9999 = 0.0;
    for (const auto kind :
         {SchemeKind::Baseline, SchemeKind::IIspe, SchemeKind::Dpes,
          SchemeKind::AeroCons, SchemeKind::Aero}) {
        SsdConfig cfg = SsdConfig::bench();
        cfg.scheme = kind;
        cfg.initialPec = pec;
        Ssd ssd(cfg);

        SyntheticConfig wc;
        wc.spec = workloadByName(wl);
        wc.footprintPages = ssd.config().logicalPages();
        wc.numRequests = requests;
        ssd.run(generateTrace(wc));

        const auto &m = ssd.metrics();
        const double p9999 = ticksToUs(m.readLatency.percentile(0.9999));
        if (kind == SchemeKind::Baseline)
            base_9999 = p9999;
        std::printf("%-10s | %8.1f | %8.0f | %8.0f | %8.0f | %9.2f"
                    "   (p99.99 %.2fx)\n",
                    schemeKindName(kind),
                    m.readLatency.mean() / static_cast<double>(kUs),
                    ticksToUs(m.readLatency.percentile(0.999)), p9999,
                    ticksToUs(m.readLatency.max()),
                    m.avgEraseLatencyMs(), p9999 / base_9999);
    }
    std::printf("\nAERO attacks the tail: erases are rare, so averages "
                "barely move, but every\nblocked read at the 99.99th "
                "percentile waits on an erase loop AERO made shorter.\n");
    return 0;
}
