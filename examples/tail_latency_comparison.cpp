/**
 * @file
 * Datacenter scenario: a latency-sensitive service (the paper's
 * motivation) runs the same workload on drives that differ only in their
 * erase scheme. Prints the read-tail comparison that makes the case for
 * AERO: erase operations rarely touch the average but dominate the
 * 99.99th+ percentiles, and AERO shrinks exactly those.
 *
 * The five drives are declared as one SweepSpec and simulated in
 * parallel by SweepRunner (AERO_SWEEP_THREADS controls the pool).
 *
 * Usage: tail_latency_comparison [workload] [pec] [requests] [--json out]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/report.hh"
#include "exp/sweep.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    const char *wl = "ali.D";
    double pec = 2500.0;
    std::uint64_t requests = 30000;
    std::string json_path;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json needs a file path\n");
                return 1;
            }
            json_path = argv[++i];
            continue;
        }
        switch (positional++) {
          case 0: wl = argv[i]; break;
          case 1: pec = std::atof(argv[i]); break;
          case 2: requests = std::strtoull(argv[i], nullptr, 10); break;
          default:
            std::fprintf(stderr, "unexpected argument '%s' (usage: %s "
                                 "[workload] [pec] [requests] "
                                 "[--json out])\n",
                         argv[i], argv[0]);
            return 1;
        }
    }

    const SweepSpec spec = SweepBuilder()
                               .workload(wl)
                               .allSchemes()
                               .pec(pec)
                               .requests(requests)
                               .seed(7)
                               .build();

    std::printf("workload %s at %.0f P/E cycles, %llu requests, "
                "%d sweep threads\n\n",
                wl, pec, static_cast<unsigned long long>(requests),
                SweepRunner().threads());
    const auto results = SweepRunner().run(spec);
    if (!json_path.empty())
        writeJsonFile(json_path, sweepReport(spec, results));

    std::printf("%-10s | %8s | %8s | %8s | %8s | %9s\n", "scheme",
                "avg[us]", "p99.9", "p99.99", "p99.9999", "erase[ms]");
    std::printf("%s\n", std::string(70, '-').c_str());

    const double base_9999 = results.front().p9999Us;
    for (const auto &r : results) {
        std::printf("%-10s | %8.1f | %8.0f | %8.0f | %8.0f | %9.2f"
                    "   (p99.99 %.2fx)\n",
                    schemeKindName(r.point.scheme), r.avgReadUs, r.p999Us,
                    r.p9999Us, r.p999999Us, r.avgEraseMs,
                    r.p9999Us / base_9999);
    }
    std::printf("\nAERO attacks the tail: erases are rare, so averages "
                "barely move, but every\nblocked read at the 99.99th "
                "percentile waits on an erase loop AERO made shorter.\n");
    return 0;
}
