/**
 * @file
 * Endurance scenario: cycle a block population to end of life under two
 * erase schemes and watch the average max-RBER trajectories diverge --
 * the mechanism behind the paper's 43% lifetime improvement. A compact
 * version of the Fig. 13 study, with the trajectory printed as it runs.
 *
 * Usage: lifetime_endurance [schemeA] [schemeB]
 *   scheme names: baseline, iispe, dpes, cons, aero
 */

#include <cstdio>
#include <cstring>

#include "devchar/lifetime.hh"

using namespace aero;

namespace
{

SchemeKind
parseScheme(const char *s, SchemeKind fallback)
{
    if (!s)
        return fallback;
    if (!std::strcmp(s, "baseline"))
        return SchemeKind::Baseline;
    if (!std::strcmp(s, "iispe"))
        return SchemeKind::IIspe;
    if (!std::strcmp(s, "dpes"))
        return SchemeKind::Dpes;
    if (!std::strcmp(s, "cons"))
        return SchemeKind::AeroCons;
    if (!std::strcmp(s, "aero"))
        return SchemeKind::Aero;
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    const SchemeKind a =
        parseScheme(argc > 1 ? argv[1] : nullptr, SchemeKind::Baseline);
    const SchemeKind b =
        parseScheme(argc > 2 ? argv[2] : nullptr, SchemeKind::Aero);

    LifetimeConfig cfg;
    cfg.farm.numChips = 8;
    cfg.farm.blocksPerChip = 15;
    cfg.checkpointEvery = 250;
    LifetimeTester tester(cfg);

    std::printf("cycling %d blocks to the %d-bit RBER requirement...\n\n",
                cfg.farm.numChips * cfg.farm.blocksPerChip,
                static_cast<int>(cfg.rberRequirement));
    const auto ra = tester.run(a);
    const auto rb = tester.run(b);

    std::printf("%8s | %12s | %12s\n", "PEC", schemeKindName(a),
                schemeKindName(b));
    std::printf("%s\n", std::string(40, '-').c_str());
    const std::size_t rows = std::max(ra.curve.size(), rb.curve.size());
    for (std::size_t i = 0; i < rows; i += 2) {
        const double pec = (i + 1) * cfg.checkpointEvery;
        std::printf("%8.0f |", pec);
        if (i < ra.curve.size())
            std::printf(" %12.1f |", ra.curve[i].second);
        else
            std::printf(" %12s |", "worn out");
        if (i < rb.curve.size())
            std::printf(" %12.1f\n", rb.curve[i].second);
        else
            std::printf(" %12s\n", "worn out");
    }
    std::printf("\nlifetime: %s %.0f PEC, %s %.0f PEC (%+.1f%%)\n",
                schemeKindName(a), ra.lifetimePec, schemeKindName(b),
                rb.lifetimePec,
                100.0 * (rb.lifetimePec - ra.lifetimePec) /
                    ra.lifetimePec);
    std::printf("avg erase: %s %.2f ms (%.2f loops), "
                "%s %.2f ms (%.2f loops)\n",
                schemeKindName(a), ra.avgEraseLatencyMs, ra.avgLoops,
                schemeKindName(b), rb.avgEraseLatencyMs, rb.avgLoops);
    return 0;
}
